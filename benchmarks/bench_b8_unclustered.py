"""B8 — clustered vs unclustered access: the classic crossover.

The same selection is answered three ways over the same logical relation:

* clustering B-tree ``range`` (tuples live in the leaves),
* secondary index ``sindex_range`` over a TID heap (one heap page fetch per
  matching tuple),
* full heap scan with a ``filter``.

Expected shape: at low selectivity both indexes win; as selectivity grows
the *unclustered* index crosses over and loses to the scan (random fetches
exceed sequential page reads) while the clustered index converges to the
scan from below.  This is the cost asymmetry every optimizer textbook draws
— and the reason rule conditions distinguish representation types.
"""

import pytest

from repro.models.relational import make_tuple
from repro.storage.io import GLOBAL_PAGES
from repro.system import build_relational_system

N = 4000
SELECTIVITIES = [0.01, 0.1, 0.5]


@pytest.fixture(scope="module")
def system():
    system = build_relational_system()
    system.run(
        """
type item = tuple(<(sku, string), (price, int)>)
create heap : tidrel(item)
create clustered : btree(item, price, int)
create idx : sindex(item, price, int)
"""
    )
    item_t = system.database.aliases["item"]
    heap = system.database.objects["heap"].value
    clustered = system.database.objects["clustered"].value
    import random

    rng = random.Random(11)
    for i in range(N):
        row = make_tuple(item_t, sku=f"sku{i}", price=rng.randrange(1_000_000))
        heap.insert(row)
        clustered.insert(row)
    system.run_one("update idx := build_index(heap, price)")
    return system


def _threshold(selectivity):
    return int(1_000_000 * (1 - selectivity))


def _reads(system, text):
    before = GLOBAL_PAGES.stats.snapshot()
    value = system.run_one(text).value
    return value, GLOBAL_PAGES.stats.delta(before).reads


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_clustered_range(benchmark, system, selectivity):
    text = f"query clustered range[{_threshold(selectivity)}, top] count"
    count, reads = _reads(system, text)
    benchmark.extra_info.update(selectivity=selectivity, rows=count, page_reads=reads)
    benchmark(lambda: system.run_one(text))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_unclustered_sindex(benchmark, system, selectivity):
    text = f"query idx sindex_range[{_threshold(selectivity)}, top] count"
    count, reads = _reads(system, text)
    benchmark.extra_info.update(selectivity=selectivity, rows=count, page_reads=reads)
    benchmark(lambda: system.run_one(text))


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_heap_scan(benchmark, system, selectivity):
    text = (
        f"query heap feed filter[fun (i: item) i price >= {_threshold(selectivity)}] count"
    )
    count, reads = _reads(system, text)
    benchmark.extra_info.update(selectivity=selectivity, rows=count, page_reads=reads)
    benchmark(lambda: system.run_one(text))


def test_crossover_shape(system):
    """Low selectivity: unclustered index beats the scan in page reads.
    High selectivity: the scan beats the unclustered index."""
    _, idx_low = _reads(system, f"query idx sindex_range[{_threshold(0.01)}, top] count")
    _, scan_low = _reads(
        system,
        f"query heap feed filter[fun (i: item) i price >= {_threshold(0.01)}] count",
    )
    assert idx_low < scan_low

    _, idx_high = _reads(system, f"query idx sindex_range[{_threshold(0.5)}, top] count")
    _, scan_high = _reads(
        system,
        f"query heap feed filter[fun (i: item) i price >= {_threshold(0.5)}] count",
    )
    assert scan_high < idx_high

    # The clustered index never loses to the scan in page reads.
    _, clus_high = _reads(system, f"query clustered range[{_threshold(0.5)}, top] count")
    _, scan_high2 = _reads(
        system,
        f"query heap feed filter[fun (i: item) i price >= {_threshold(0.5)}] count",
    )
    assert clus_high <= scan_high2 * 2
