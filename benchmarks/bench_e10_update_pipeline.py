"""E10 — throughput of the Section 6 update pipeline.

Compares the full front-end path for updates (parse → typecheck →
rule-translate → execute on the B-tree) against raw structure updates, and
measures the translated delete/modify statements end to end.  Expected
shape: the pipeline adds a fixed per-statement cost (~1 ms) on top of the
microsecond-scale structure operation — the price of full genericity, paid
once per statement, not per tuple.
"""


from repro.geometry import Point
from repro.models.relational import make_tuple
from repro.system import build_relational_system

SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""

INSERT = (
    'update cities := insert(cities, mktuple[<(cname, "x"), '
    "(center, pt(1, 1)), (pop, {pop})>])"
)


def fresh_system(n=0):
    system = build_relational_system()
    system.run(SCHEMA)
    bt = system.database.objects["cities_rep"].value
    city_t = system.database.aliases["city"]
    for i in range(n):
        bt.insert(make_tuple(city_t, cname=f"c{i}", center=Point(1, 1), pop=i))
    return system


def test_translated_insert_statement(benchmark):
    system = fresh_system()
    counter = iter(range(10**9))

    def run():
        system.run_one(INSERT.format(pop=next(counter)))

    benchmark(run)


def test_raw_structure_insert(benchmark):
    system = fresh_system()
    bt = system.database.objects["cities_rep"].value
    city_t = system.database.aliases["city"]
    counter = iter(range(10**9))

    def run():
        bt.insert(
            make_tuple(city_t, cname="x", center=Point(1, 1), pop=next(counter))
        )

    benchmark(run)


def test_translated_range_delete(benchmark):
    def setup():
        return (fresh_system(n=2000),), {}

    def run(system):
        system.run_one("update cities := delete(cities, pop <= 200)")
        assert len(system.database.objects["cities_rep"].value) == 1799

    benchmark.pedantic(run, setup=setup, rounds=8)


def test_translated_key_modify(benchmark):
    def setup():
        return (fresh_system(n=2000),), {}

    def run(system):
        system.run_one("update cities := modify(cities, pop <= 100, pop, pop + 5000)")

    benchmark.pedantic(run, setup=setup, rounds=8)
