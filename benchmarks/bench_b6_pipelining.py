"""B6 — ablation: stream pipelining vs eager materialization.

The paper's STREAM kind assumes pipelined execution.  This compares the same
three-stage plan run fully pipelined against a variant with a ``collect``
materialization barrier after every operator.  Expected shape: pipelining
wins by a constant factor that grows with plan depth, and by much more when
an early ``head`` makes laziness pay.
"""

import pytest

from benchmarks.helpers import build_spatial_system

PIPELINED = (
    "query cities_rep feed filter[pop >= 100000] "
    "project[<(n, cname), (k, fun (c: city) c pop div 1000)>] count"
)
MATERIALIZED = (
    "query cities_rep feed collect feed filter[pop >= 100000] collect feed "
    "project[<(n, cname), (k, fun (c: city) c pop div 1000)>] collect feed count"
)
PIPELINED_HEAD = (
    "query cities_rep feed filter[pop >= 100000] head[10] count"
)
MATERIALIZED_HEAD = (
    "query cities_rep feed collect feed filter[pop >= 100000] collect feed "
    "head[10] count"
)


@pytest.fixture(scope="module")
def system():
    return build_spatial_system(n_cities=4000, n_states=1)


def test_pipelined_plan(benchmark, system):
    assert system.run_one(PIPELINED).value == system.run_one(MATERIALIZED).value
    benchmark(lambda: system.run_one(PIPELINED))


def test_materialized_plan(benchmark, system):
    benchmark(lambda: system.run_one(MATERIALIZED))


def test_pipelined_with_early_head(benchmark, system):
    assert system.run_one(PIPELINED_HEAD).value == 10
    benchmark(lambda: system.run_one(PIPELINED_HEAD))


def test_materialized_with_early_head(benchmark, system):
    benchmark(lambda: system.run_one(MATERIALIZED_HEAD))
