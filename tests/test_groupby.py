"""The second-order groupby: aggregates receive group streams."""

import pytest

from repro.core.types import format_type
from repro.errors import NoMatchingOperator


@pytest.fixture()
def session(system):
    system.run(
        """
type sale = tuple(<(item, string), (amount, int)>)
create sales : srel(sale)
"""
    )
    from repro.models.relational import make_tuple

    srel = system.database.objects["sales"].value
    sale_t = system.database.aliases["sale"]
    for item, amount in [
        ("pen", 3),
        ("ink", 9),
        ("pen", 4),
        ("pad", 5),
        ("ink", 1),
        ("pen", 1),
    ]:
        srel.append(make_tuple(sale_t, item=item, amount=amount))
    return system


GROUP_QUERY = (
    "query sales feed groupby[item, <"
    "(total, fun (g: stream(sale)) g sum_of[amount]), "
    "(n, fun (g: stream(sale)) g count)"
    ">]"
)


class TestGroupBy:
    def test_result_type(self, session):
        r = session.run_one(GROUP_QUERY)
        assert format_type(r.type) == (
            "stream(tuple(<(item, string), (total, int), (n, int)>))"
        )

    def test_aggregation_values(self, session):
        r = session.run_one(GROUP_QUERY)
        rows = {t.attr("item"): (t.attr("total"), t.attr("n")) for t in r.value}
        assert rows == {"pen": (8, 3), "ink": (10, 2), "pad": (5, 1)}

    def test_groups_in_first_seen_order(self, session):
        r = session.run_one(GROUP_QUERY)
        assert [t.attr("item") for t in r.value] == ["pen", "ink", "pad"]

    def test_composes_with_filter(self, session):
        r = session.run_one(GROUP_QUERY + " filter[total > 6] count")
        assert r.value == 2

    def test_min_aggregate(self, session):
        r = session.run_one(
            "query sales feed groupby[item, "
            "<(cheapest, fun (g: stream(sale)) g min_of[amount])>]"
        )
        rows = {t.attr("item"): t.attr("cheapest") for t in r.value}
        assert rows == {"pen": 1, "ink": 1, "pad": 5}

    def test_unknown_group_attr_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one(
                "query sales feed groupby[ghost, "
                "<(n, fun (g: stream(sale)) g count)>]"
            )

    def test_duplicate_output_attr_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one(
                "query sales feed groupby[item, "
                "<(item, fun (g: stream(sale)) g count)>]"
            )
