"""The representation model (experiment E8, paper Section 4)."""

import pytest

from repro.core.algebra import Evaluator, Stream
from repro.core.terms import Apply, Fun, ListTerm, Literal, TupleTerm, Var
from repro.core.typecheck import TypeChecker
from repro.core.types import Sym, TermArg, TypeApp, format_type, tuple_type
from repro.errors import NoMatchingOperator, TypeFormationError
from repro.geometry import Point, Polygon
from repro.models.relational import make_tuple
from repro.rep.model import representation_model, tuple_attr_getter
from repro.storage import BTree, LSDTree

INT = TypeApp("int")
STRING = TypeApp("string")
CITY = tuple_type([("cname", STRING), ("center", TypeApp("point")), ("pop", INT)])
STATE = tuple_type([("sname", STRING), ("region", TypeApp("pgon"))])

BTREE_CITY = TypeApp("btree", (CITY, Sym("pop"), INT))


def lsd_state_type():
    key = Fun((("s", STATE),), Apply("bbox", (Apply("region", (Var("s"),)),)))
    return TypeApp("lsdtree", (STATE, TermArg(key)))


@pytest.fixture()
def env():
    sos, algebra = representation_model()
    lsd_t = lsd_state_type()
    objects = {"cities_rep": BTREE_CITY, "states_rep": lsd_t}
    tc = TypeChecker(sos, object_types=objects.get)
    sos.type_system.term_typer = lambda fun, expected: tc._check_fun(
        fun, {}, expected_params=tuple(expected)
    )
    sos.type_system.check_type(lsd_t)

    values = {}
    ev = Evaluator(algebra, resolver=values.get)

    bt = BTree(key=tuple_attr_getter(CITY, "pop"))
    bt.rep_type = BTREE_CITY
    bt.tuple_type = CITY
    for i in range(20):
        bt.insert(
            make_tuple(CITY, cname=f"c{i}", center=Point(i * 5 + 2, 50), pop=i * 100)
        )
    from repro.core.algebra import Closure

    lsd = LSDTree(key=Closure(lsd_t.args[1].term, {}, ev))
    lsd.rep_type = lsd_t
    lsd.tuple_type = STATE
    for i in range(5):
        lsd.insert(
            make_tuple(
                STATE, sname=f"s{i}", region=Polygon.rectangle(i * 20, 0, i * 20 + 20, 100)
            )
        )
    values.update({"cities_rep": bt, "states_rep": lsd})
    return sos, tc, ev, bt, lsd


class TestTypeSystem:
    def test_kinds(self, env):
        sos, *_ = env
        names = {k.name for k in sos.type_system.kinds}
        assert {
            "ORD",
            "STREAM",
            "SREL",
            "TIDREL",
            "BTREE",
            "LSDTREE",
            "RELREP",
        } <= names

    def test_ord_members(self, env):
        sos, *_ = env
        assert sos.type_system.has_kind(INT, "ORD")
        assert sos.type_system.has_kind(STRING, "ORD")
        assert not sos.type_system.has_kind(TypeApp("pgon"), "ORD")

    def test_btree_attr_constructor_spec(self, env):
        sos, *_ = env
        sos.type_system.check_type(BTREE_CITY)
        with pytest.raises(TypeFormationError):
            sos.type_system.check_type(TypeApp("btree", (CITY, Sym("ghost"), INT)))
        with pytest.raises(TypeFormationError):
            # pop has type int, not string
            sos.type_system.check_type(TypeApp("btree", (CITY, Sym("pop"), STRING)))

    def test_btree_function_variant(self, env):
        sos, *_ = env
        key = Fun((("c", CITY),), Apply("pop", (Var("c"),)))
        sos.type_system.check_type(TypeApp("btree", (CITY, TermArg(key))))

    def test_btree_key_function_body_is_typechecked(self, env):
        sos, *_ = env
        bad = Fun((("c", CITY),), Apply("ghost_attr", (Var("c"),)))
        with pytest.raises(TypeFormationError):
            sos.type_system.check_type(TypeApp("btree", (CITY, TermArg(bad))))

    def test_lsdtree_key_must_yield_rect(self, env):
        sos, *_ = env
        bad = Fun((("s", STATE),), Apply("sname", (Var("s"),)))
        with pytest.raises(TypeFormationError):
            sos.type_system.check_type(TypeApp("lsdtree", (STATE, TermArg(bad))))

    def test_subtype_order(self, env):
        sos, *_ = env
        relrep = TypeApp("relrep", (CITY,))
        assert sos.subtypes.is_subtype(BTREE_CITY, relrep)
        assert sos.subtypes.is_subtype(TypeApp("srel", (CITY,)), relrep)
        assert sos.subtypes.is_subtype(TypeApp("tidrel", (CITY,)), relrep)
        assert sos.subtypes.is_subtype(
            lsd_state_type(), TypeApp("relrep", (STATE,))
        )


class TestStreamOperators:
    def test_feed_via_subtype_polymorphism(self, env):
        sos, tc, ev, bt, lsd = env
        term = tc.check(Apply("feed", (Var("cities_rep"),)))
        assert format_type(term.type) == f"stream({format_type(CITY)})"
        assert len(list(ev.eval(term))) == 20

    def test_filter(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply(
                "filter",
                (Apply("feed", (Var("cities_rep"),)), Apply(">", (Var("pop"), Literal(1500)))),
            )
        )
        assert len(list(ev.eval(term))) == 4

    def test_project_computes_new_schema(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply(
                "project",
                (
                    Apply("feed", (Var("cities_rep"),)),
                    ListTerm(
                        (
                            TupleTerm((Var("n"), Var("cname"))),
                            TupleTerm(
                                (
                                    Var("hundreds"),
                                    Fun(
                                        (("c", CITY),),
                                        Apply("div", (Apply("pop", (Var("c"),)), Literal(100))),
                                    ),
                                )
                            ),
                        )
                    ),
                ),
            )
        )
        assert format_type(term.type) == "stream(tuple(<(n, string), (hundreds, int)>))"
        rows = list(ev.eval(term))
        assert rows[0].attr("hundreds") == 0
        assert rows[5].attr("hundreds") == 5

    def test_replace(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply(
                "replace",
                (
                    Apply("feed", (Var("cities_rep"),)),
                    Var("pop"),
                    Fun((("c", CITY),), Apply("*", (Apply("pop", (Var("c"),)), Literal(2)))),
                ),
            )
        )
        rows = list(ev.eval(term))
        assert rows[1].attr("pop") == 200

    def test_replace_wrong_type_rejected(self, env):
        _, tc, ev, *_ = env
        with pytest.raises(NoMatchingOperator):
            tc.check(
                Apply(
                    "replace",
                    (
                        Apply("feed", (Var("cities_rep"),)),
                        Var("pop"),
                        Fun((("c", CITY),), Apply("cname", (Var("c"),))),
                    ),
                )
            )

    def test_collect_gives_rescannable_srel(self, env):
        _, tc, ev, *_ = env
        term = tc.check(Apply("collect", (Apply("feed", (Var("cities_rep"),)),)))
        assert format_type(term.type) == f"srel({format_type(CITY)})"
        srel = ev.eval(term)
        assert len(list(srel.scan())) == 20
        assert len(list(srel.scan())) == 20  # repeatable, unlike a stream

    def test_head_and_count(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply("count", (Apply("head", (Apply("feed", (Var("cities_rep"),)), Literal(7))),))
        )
        assert ev.eval(term) == 7


class TestSearchOperators:
    def test_range_inclusive(self, env):
        _, tc, ev, *_ = env
        term = tc.check(Apply("range", (Var("cities_rep"), Literal(500), Literal(800))))
        assert [t.attr("pop") for t in ev.eval(term)] == [500, 600, 700, 800]

    def test_range_halfranges(self, env):
        _, tc, ev, *_ = env
        low = tc.check(Apply("range", (Var("cities_rep"), Var("bottom"), Literal(200))))
        assert len(list(ev.eval(low))) == 3
        high = tc.check(Apply("range", (Var("cities_rep"), Literal(1700), Var("top"))))
        assert len(list(ev.eval(high))) == 3

    def test_range_wrong_key_type_rejected(self, env):
        _, tc, ev, *_ = env
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("range", (Var("cities_rep"), Literal("a"), Literal("z"))))

    def test_exact(self, env):
        _, tc, ev, *_ = env
        term = tc.check(Apply("exact", (Var("cities_rep"), Literal(700))))
        assert [t.attr("cname") for t in ev.eval(term)] == ["c7"]

    def test_point_search(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply("point_search", (Var("states_rep"), Apply("pt", (Literal(30), Literal(50)))))
        )
        assert [t.attr("sname") for t in ev.eval(term)] == ["s1"]

    def test_overlap_search(self, env):
        _, tc, ev, *_ = env
        term = tc.check(
            Apply(
                "overlap_search",
                (Var("states_rep"), Apply("box", (Literal(10), Literal(0), Literal(50), Literal(10)))),
            )
        )
        assert sorted(t.attr("sname") for t in ev.eval(term)) == ["s0", "s1", "s2"]


class TestSearchJoin:
    """Both Section 4 plans compute the same join."""

    def _plan(self, tc, inner_body):
        return tc.check(
            Apply(
                "search_join",
                (Apply("feed", (Var("cities_rep"),)), Fun((("c", CITY),), inner_body)),
            )
        )

    def test_plans_agree(self, env):
        _, tc, ev, *_ = env
        pred = Fun(
            (("s", STATE),),
            Apply("inside", (Apply("center", (Var("c"),)), Apply("region", (Var("s"),)))),
        )
        scan_plan = self._plan(
            tc, Apply("filter", (Apply("feed", (Var("states_rep"),)), pred))
        )

        pred2 = Fun(
            (("s", STATE),),
            Apply("inside", (Apply("center", (Var("c"),)), Apply("region", (Var("s"),)))),
        )
        index_plan = self._plan(
            tc,
            Apply(
                "filter",
                (
                    Apply("point_search", (Var("states_rep"), Apply("center", (Var("c"),)))),
                    pred2,
                ),
            ),
        )
        rows1 = sorted(
            (t.attr("cname"), t.attr("sname")) for t in Stream.materialize(ev.eval(scan_plan))
        )
        rows2 = sorted(
            (t.attr("cname"), t.attr("sname")) for t in Stream.materialize(ev.eval(index_plan))
        )
        assert rows1 == rows2
        assert len(rows1) == 20

    def test_result_schema_is_concatenation(self, env):
        _, tc, ev, *_ = env
        pred = Fun(
            (("s", STATE),),
            Apply("inside", (Apply("center", (Var("c"),)), Apply("region", (Var("s"),)))),
        )
        plan = self._plan(tc, Apply("filter", (Apply("feed", (Var("states_rep"),)), pred)))
        assert format_type(plan.type) == (
            "stream(tuple(<(cname, string), (center, point), (pop, int), "
            "(sname, string), (region, pgon)>))"
        )


class TestStructureUpdates:
    def test_btree_insert_via_algebra(self, env):
        _, tc, ev, bt, _ = env
        new = make_tuple(CITY, cname="x", center=Point(1, 1), pop=55)
        lit = Literal(new)
        lit.type = CITY
        term = tc.check(Apply("insert", (Var("cities_rep"), lit)))
        ev.eval(term, allow_update=True)
        assert len(bt) == 21

    def test_btree_delete_via_range_stream(self, env):
        _, tc, ev, bt, _ = env
        term = tc.check(
            Apply(
                "delete",
                (Var("cities_rep"), Apply("range", (Var("cities_rep"), Var("bottom"), Literal(400)))),
            )
        )
        ev.eval(term, allow_update=True)
        assert len(bt) == 15

    def test_btree_re_insert_key_update(self, env):
        # Section 6: pop := pop * 2 for one city, via re_insert
        _, tc, ev, bt, _ = env
        term = tc.check(
            Apply(
                "re_insert",
                (
                    Var("cities_rep"),
                    Apply("exact", (Var("cities_rep"), Literal(100))),
                    Fun(
                        (("s", TypeApp("stream", (CITY,))),),
                        Apply(
                            "replace",
                            (
                                Var("s"),
                                Var("pop"),
                                Fun(
                                    (("c", CITY),),
                                    Apply("*", (Apply("pop", (Var("c"),)), Literal(20))),
                                ),
                            ),
                        ),
                    ),
                ),
            )
        )
        ev.eval(term, allow_update=True)
        pops = [t.attr("pop") for t in bt.scan()]
        assert 100 not in pops
        assert pops == sorted(pops)
        assert 2000 in pops
