"""The standard rule set and the rule engine (experiment E9, Section 5)."""

import pytest

from repro.core.terms import Apply, format_term, walk_terms
from repro.errors import OptimizationError


def ops_of(term):
    return [n.op for n in walk_terms(term) if isinstance(n, Apply)]


@pytest.fixture()
def sysq(loaded_system):
    """Shortcut: run one query through the loaded system."""

    def run(text):
        return loaded_system.run_one("query " + text)

    return run


class TestSelectionRules:
    def test_ge_becomes_pure_range(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop >= 5000]")
        assert r.fired == ["select_ge_btree_range"]
        assert ops_of(r.translated_term)[0] == "range"
        assert "filter" not in ops_of(r.translated_term)

    def test_gt_becomes_range_plus_refinement(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop > 5000]")
        assert r.fired == ["select_gt_btree_range"]
        assert ops_of(r.translated_term)[0] == "filter"
        assert "range" in ops_of(r.translated_term)

    def test_eq_becomes_exact(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop = 5000]")
        assert "exact" in ops_of(r.translated_term)

    def test_non_key_attribute_falls_back_to_scan(self, loaded_system):
        r = loaded_system.run_one('query cities select[cname = "c1"]')
        assert r.fired == ["select_scan"]
        assert "feed" in ops_of(r.translated_term)

    def test_strict_conjunction_falls_back_to_scan(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop > 100 and pop < 300]")
        assert r.fired == ["select_scan"]

    def test_between_becomes_single_range(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop >= 100 and pop <= 3000]")
        assert r.fired == ["select_between_btree_range"]
        names = ops_of(r.translated_term)
        assert names == ["range"]
        scan = loaded_system.run_one(
            "query cities_rep feed filter[pop >= 100 and pop <= 3000]"
        )
        assert sorted(t.attr("cname") for t in r.value) == sorted(
            t.attr("cname") for t in scan.value
        )

    def test_between_on_non_key_falls_back(self, loaded_system):
        r = loaded_system.run_one(
            'query cities select[cname >= "c1" and cname <= "c2"]'
        )
        assert r.fired == ["select_scan"]

    def test_translated_result_matches_scan_result(self, loaded_system):
        indexed = loaded_system.run_one("query cities select[pop >= 5000]")
        # compare against a direct representation-level scan
        scan = loaded_system.run_one(
            "query cities_rep feed filter[pop >= 5000]"
        )
        a = sorted(t.attr("cname") for t in indexed.value)
        b = sorted(t.attr("cname") for t in scan.value)
        assert a == b and len(a) > 0


class TestSpatialJoinRule:
    def test_paper_rule_fires(self, loaded_system):
        r = loaded_system.run_one("query cities states join[center inside region]")
        assert r.fired == ["join_inside_lsdtree"]
        names = ops_of(r.translated_term)
        assert names[0] == "search_join"
        assert "point_search" in names
        assert "filter" in names

    def test_plan_shape_matches_paper(self, loaded_system):
        r = loaded_system.run_one("query cities states join[center inside region]")
        plan = format_term(r.translated_term)
        # search_join(feed(cities_rep), fun (t1 ...) filter(point_search(
        #     states_rep, center(t1)), fun (t2 ...) inside(center(t1),
        #     region(t2))))
        assert plan.startswith("search_join(feed(cities_rep), fun (t1:")
        assert "point_search(states_rep, center(t1))" in plan
        assert "inside(center(t1), region(t2))" in plan

    def test_result_equals_scan_join(self, loaded_system):
        r = loaded_system.run_one("query cities states join[center inside region]")
        scan = loaded_system.run_one(
            "query cities_rep feed "
            "fun (c: city) states_rep feed filter[fun (s: state) c center inside s region] "
            "search_join"
        )
        a = sorted((t.attr("cname"), t.attr("sname")) for t in r.value)
        b = sorted((t.attr("cname"), t.attr("sname")) for t in scan.value)
        assert a == b and len(a) == 40

    def test_generic_join_falls_back_to_scan_join(self, loaded_system):
        r = loaded_system.run_one("query cities states join[fun (c: city, s: state) c pop > 0]")
        assert r.fired == ["join_scan"]
        assert ops_of(r.translated_term)[0] == "search_join"


class TestConditions:
    def test_unregistered_relation_fails_translation(self, loaded_system):
        loaded_system.run("create orphans : rel(city)")
        with pytest.raises(OptimizationError):
            loaded_system.run_one("query orphans select[pop > 1]")

    def test_catalog_supplies_the_representation(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop >= 1]")
        assert "cities_rep" in format_term(r.translated_term)

    def test_second_representation_is_usable(self, loaded_system):
        # register a second representation (an srel) for cities; the select
        # on a non-key attribute can use either; the catalog enumeration
        # must find one that typechecks.
        loaded_system.run(
            """
create cities_srel : srel(city)
update cities_srel := cities_rep feed collect
update rep := insert(rep, cities, cities_srel)
"""
        )
        r = loaded_system.run_one('query cities select[cname = "c3"]')
        assert r.fired == ["select_scan"]
        assert len(r.value) == 1


class TestEngine:
    def test_statistics(self, loaded_system):
        r = loaded_system.run_one("query cities select[pop >= 5000]")
        assert r.fired == ["select_ge_btree_range"]

    def test_no_model_residue_after_translation(self, loaded_system):
        r = loaded_system.run_one("query cities states join[center inside region]")
        assert loaded_system._term_level(r.translated_term) != "model"

    def test_rep_queries_pass_through_untranslated(self, loaded_system):
        r = loaded_system.run_one("query cities_rep feed count")
        assert not r.translated
        assert r.level == "rep"
