"""Spatial data types: point / rect / pgon with inside and bbox."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)


def rects():
    return st.tuples(coords, coords, coords, coords).map(
        lambda c: Rect(min(c[0], c[2]), min(c[1], c[3]), max(c[0], c[2]), max(c[1], c[3]))
    )


def points():
    return st.tuples(coords, coords).map(lambda c: Point(c[0], c[1]))


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(5, 5))
        assert r.contains_point(Point(0, 0))  # boundary counts
        assert not r.contains_point(Point(11, 5))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_intersects(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(4, 4, 9, 9))
        assert not Rect(0, 0, 5, 5).intersects(Rect(6, 6, 9, 9))
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 5, 9, 9))  # touching

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects())
    def test_center_inside(self, r):
        assert r.contains_point(r.center)

    def test_area(self):
        assert Rect(0, 0, 2, 3).area == 6


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon((Point(0, 0), Point(1, 1)))

    def test_rectangle_factory(self):
        p = Polygon.rectangle(0, 0, 10, 5)
        assert p.bbox() == Rect(0, 0, 10, 5)

    def test_from_coords(self):
        p = Polygon.from_coords([(0, 0), (4, 0), (2, 3)])
        assert len(p.vertices) == 3

    def test_contains_point_triangle(self):
        tri = Polygon.from_coords([(0, 0), (10, 0), (5, 10)])
        assert tri.contains_point(Point(5, 3))
        assert not tri.contains_point(Point(0, 10))
        assert tri.contains_point(Point(5, 0))  # on an edge

    def test_concave_polygon(self):
        # A "U" shape: the notch is outside
        u = Polygon.from_coords(
            [(0, 0), (10, 0), (10, 10), (7, 10), (7, 3), (3, 3), (3, 10), (0, 10)]
        )
        assert not u.contains_point(Point(5, 8))  # inside the notch
        assert u.contains_point(Point(1, 8))
        assert u.contains_point(Point(5, 1))

    @given(points())
    @settings(max_examples=60)
    def test_bbox_contains_every_contained_point(self, p):
        # Boundary tests use a small epsilon, so expand the box accordingly.
        poly = Polygon.from_coords([(0, 0), (50, 10), (30, 60), (-10, 40)])
        if poly.contains_point(p):
            box = poly.bbox()
            slack = Rect(box.xmin - 1e-9, box.ymin - 1e-9, box.xmax + 1e-9, box.ymax + 1e-9)
            assert slack.contains_point(p)

    def test_bbox_is_exact_for_rectangles(self):
        poly = Polygon.rectangle(-3, -4, 7, 8)
        box = poly.bbox()
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (-3, -4, 7, 8)

    @given(st.lists(st.tuples(coords, coords), min_size=3, max_size=8, unique=True))
    @settings(max_examples=50)
    def test_vertices_are_inside_bbox(self, vertices):
        poly = Polygon.from_coords(vertices)
        box = poly.bbox()
        for v in poly.vertices:
            assert box.contains_point(v)
