"""EXPLAIN: the optimizer's decision without execution."""

import pytest

from repro.errors import UpdateError


class TestExplain:
    def test_indexed_selection(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        assert info["level"] == "model"
        assert info["fired"] == ["select_ge_btree_range"]
        assert info["plan"].startswith("cities_rep range[5000, top")
        assert info["estimated_cost"] < 50

    def test_scan_costs_more(self, loaded_system):
        indexed = loaded_system.explain("cities select[pop >= 5000]")
        scan = loaded_system.explain("cities_rep feed filter[pop >= 5000]")
        assert scan["level"] == "rep"
        assert scan["fired"] == []
        assert indexed["estimated_cost"] < scan["estimated_cost"]

    def test_explain_does_not_execute(self, loaded_system):
        bt = loaded_system.database.objects["cities_rep"].value
        before = len(bt)
        loaded_system.explain("cities select[pop >= 0]")
        assert len(bt) == before

    def test_accepts_query_prefix(self, loaded_system):
        info = loaded_system.explain("query cities select[pop >= 5000]")
        assert info["fired"]

    def test_rejects_updates(self, loaded_system):
        with pytest.raises(Exception):
            loaded_system.explain("update cities := empty")

    def test_spatial_join_plan(self, loaded_system):
        info = loaded_system.explain("cities states join[center inside region]")
        assert info["fired"] == ["join_inside_lsdtree"]
        assert "point_search" in info["plan"]
