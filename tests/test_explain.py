"""EXPLAIN: the optimizer's decision without execution."""

import pytest



class TestExplain:
    def test_indexed_selection(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        assert info["level"] == "model"
        assert info["fired"] == ["select_ge_btree_range"]
        assert info["plan"].startswith("cities_rep range[5000, top")
        assert info["estimated_cost"] < 50

    def test_scan_costs_more(self, loaded_system):
        indexed = loaded_system.explain("cities select[pop >= 5000]")
        scan = loaded_system.explain("cities_rep feed filter[pop >= 5000]")
        assert scan["level"] == "rep"
        assert scan["fired"] == []
        assert indexed["estimated_cost"] < scan["estimated_cost"]

    def test_explain_does_not_execute(self, loaded_system):
        bt = loaded_system.database.objects["cities_rep"].value
        before = len(bt)
        loaded_system.explain("cities select[pop >= 0]")
        assert len(bt) == before

    def test_accepts_query_prefix(self, loaded_system):
        info = loaded_system.explain("query cities select[pop >= 5000]")
        assert info["fired"]

    def test_rejects_updates(self, loaded_system):
        with pytest.raises(Exception):
            loaded_system.explain("update cities := empty")

    def test_spatial_join_plan(self, loaded_system):
        info = loaded_system.explain("cities states join[center inside region]")
        assert info["fired"] == ["join_inside_lsdtree"]
        assert "point_search" in info["plan"]

    def test_translated_flag(self, loaded_system):
        translated = loaded_system.explain("cities select[pop >= 5000]")
        assert translated["translated"] is True
        direct = loaded_system.explain("cities_rep feed filter[pop >= 5000]")
        assert direct["translated"] is False

    def test_rep_level_query_gets_identity_plan(self, loaded_system):
        """A representation-level query explains as itself, not an error."""
        info = loaded_system.explain("cities_rep feed filter[pop >= 5000]")
        assert info["level"] == "rep"
        assert info["translated"] is False
        assert info["fired"] == []
        assert "cities_rep feed" in info["plan"]

    def test_explaining_a_generated_plan_round_trips(self, loaded_system):
        """The plan explain prints is itself explainable (translated: false).

        This exercises the printer round-trip for generated plans — in
        particular nullary constants like ``top``, which must print bare to
        re-parse.
        """
        first = loaded_system.explain("cities select[pop >= 5000]")
        assert first["translated"] is True
        again = loaded_system.explain(first["plan"])
        assert again["level"] == "rep"
        assert again["translated"] is False
        assert again["fired"] == []
        assert again["plan"] == first["plan"]

    def test_result_includes_rule_trace(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        trace = info["rule_trace"]
        assert [f["rule"] for f in trace["fired"]] == ["select_ge_btree_range"]
        assert trace["attempts"]["select_ge_btree_range"]["fired"] == 1
        # Rules that were tried but did not apply are accounted too.
        assert any(
            rule != "select_ge_btree_range" for rule in trace["attempts"]
        )


class TestExplainAnalyze:
    def test_analyze_executes_and_reports(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]", analyze=True)
        assert info["analyzed"] is True
        assert info["translated"] is True
        expected = loaded_system.query("cities select[pop >= 5000]").value
        assert info["rows"] == len(expected)
        assert info["value"] == expected
        metrics = info["metrics"]
        assert metrics["operators"]["range"]["out"] == info["rows"]
        assert metrics["counters"]["btree.node_reads"] > 0
        assert metrics["io"]["reads"] > 0
        assert info["timings"]["total"] > 0.0
        assert set(info["timings"]) >= {"typecheck", "optimize", "execute"}

    def test_analyze_leaves_database_unchanged(self, loaded_system):
        bt = loaded_system.database.objects["cities_rep"].value
        before = len(bt)
        loaded_system.explain("cities select[pop >= 0]", analyze=True)
        assert len(bt) == before

    def test_analyze_does_not_leave_collection_armed(self, loaded_system):
        from repro import observe

        loaded_system.explain("cities select[pop >= 5000]", analyze=True)
        assert observe.ENABLED is False
        # And the session's own tracing setting is untouched.
        assert loaded_system.tracing is False
        assert loaded_system.query("cities_rep feed count").metrics is None

    def test_plain_explain_has_no_analyze_payload(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        assert info["analyzed"] is False
        assert "rows" not in info and "metrics" not in info


class TestExplainCardinality:
    def test_cost_counters_reported(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        # No statistics yet: every catalog consultation was a miss.
        assert info["cost_counters"].get("cost.stats_miss", 0) > 0
        loaded_system.run_one("analyze cities")
        warm = loaded_system.explain("cities select[pop >= 5000]")
        assert warm["cost_counters"].get("cost.stats_hit", 0) > 0

    def test_analyze_reports_per_operator_q_error(self, loaded_system):
        loaded_system.run_one("analyze cities")
        info = loaded_system.explain("cities select[pop >= 5000]", analyze=True)
        card = info["cardinality"]
        assert "range" in card
        entry = card["range"]
        assert set(entry) == {"estimated", "actual", "q_error"}
        assert entry["actual"] == info["rows"]
        assert entry["q_error"] >= 1.0
        assert info["max_q_error"] == max(
            r["q_error"] for r in card.values()
        )

    def test_histogram_makes_estimates_near_exact(self, loaded_system):
        loaded_system.run_one("analyze cities")
        info = loaded_system.explain("cities select[pop >= 5000]", analyze=True)
        # The equi-depth histogram over 40 analyzed rows predicts the range
        # output almost exactly.
        assert info["max_q_error"] < 1.5

    def test_plain_explain_has_no_cardinality_payload(self, loaded_system):
        info = loaded_system.explain("cities select[pop >= 5000]")
        assert "cardinality" not in info and "max_q_error" not in info
