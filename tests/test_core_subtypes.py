"""Subtype specifications (paper Section 4)."""

import pytest

from repro.core.patterns import PApp, PVar
from repro.core.subtypes import SubtypeRelation, SubtypeRule
from repro.core.types import Sym, TypeApp, tuple_type
from repro.errors import SpecificationError

INT = TypeApp("int")
CITY = tuple_type([("name", TypeApp("string")), ("pop", INT)])

BTREE_CITY = TypeApp("btree", (CITY, Sym("pop"), INT))
SREL_CITY = TypeApp("srel", (CITY,))
RELREP_CITY = TypeApp("relrep", (CITY,))


@pytest.fixture()
def relation():
    rel = SubtypeRelation()
    rel.add(
        SubtypeRule(
            PApp("btree", (PVar("tuple"), PVar("a"), PVar("d"))),
            PApp("relrep", (PVar("tuple"),)),
        )
    )
    rel.add(SubtypeRule(PApp("srel", (PVar("tuple"),)), PApp("relrep", (PVar("tuple"),))))
    return rel


class TestRules:
    def test_right_side_variables_must_be_bound(self):
        with pytest.raises(SpecificationError):
            SubtypeRule(PApp("a", (PVar("x"),)), PApp("b", (PVar("y"),)))


class TestRelation:
    def test_btree_is_relrep(self, relation):
        assert relation.is_subtype(BTREE_CITY, RELREP_CITY)

    def test_srel_is_relrep(self, relation):
        assert relation.is_subtype(SREL_CITY, RELREP_CITY)

    def test_reflexive(self, relation):
        assert relation.is_subtype(CITY, CITY)

    def test_not_symmetric(self, relation):
        assert not relation.is_subtype(RELREP_CITY, BTREE_CITY)

    def test_tuple_argument_must_agree(self, relation):
        other = TypeApp("relrep", (tuple_type([("x", INT)]),))
        assert not relation.is_subtype(BTREE_CITY, other)

    def test_supertypes_include_self(self, relation):
        sups = relation.supertypes(BTREE_CITY)
        assert BTREE_CITY in sups
        assert RELREP_CITY in sups

    def test_transitivity(self):
        rel = SubtypeRelation(
            [
                SubtypeRule(PApp("a", (PVar("t"),)), PApp("b", (PVar("t"),))),
                SubtypeRule(PApp("b", (PVar("t"),)), PApp("c", (PVar("t"),))),
            ]
        )
        assert rel.is_subtype(TypeApp("a", (INT,)), TypeApp("c", (INT,)))

    def test_cyclic_rules_terminate(self):
        rel = SubtypeRelation(
            [
                SubtypeRule(PApp("a", (PVar("t"),)), PApp("b", (PVar("t"),))),
                SubtypeRule(PApp("b", (PVar("t"),)), PApp("a", (PVar("t"),))),
            ]
        )
        assert rel.is_subtype(TypeApp("a", (INT,)), TypeApp("b", (INT,)))
        assert rel.is_subtype(TypeApp("b", (INT,)), TypeApp("a", (INT,)))
