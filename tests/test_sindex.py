"""Secondary indexes over TID relations in the rep model (Section 6)."""

import pytest

from repro.errors import NoMatchingOperator, TypeFormationError
from repro.storage.io import GLOBAL_PAGES


@pytest.fixture()
def session(system):
    system.run(
        """
type item = tuple(<(sku, string), (price, int)>)
create heap : tidrel(item)
"""
    )
    heap = system.database.objects["heap"].value
    from repro.models.relational import make_tuple

    item_t = system.database.aliases["item"]
    for i in range(200):
        heap.insert(make_tuple(item_t, sku=f"sku{i:03d}", price=i * 3))
    system.run_one("create idx : sindex(item, price, int)")
    system.run_one("update idx := build_index(heap, price)")
    return system


class TestTypeSystem:
    def test_sindex_type_checked(self, system):
        system.run("type t = tuple(<(a, int)>)")
        parser = system.interpreter.make_parser()
        system.database.sos.type_system.check_type(
            parser.parse_type("sindex(t, a, int)")
        )
        with pytest.raises(TypeFormationError):
            system.database.sos.type_system.check_type(
                parser.parse_type("sindex(t, ghost, int)")
            )

    def test_build_index_result_type(self, session):
        obj = session.database.objects["idx"]
        assert obj.type.constructor == "sindex"
        assert obj.value is not None


class TestQueries:
    def test_sindex_range(self, session):
        r = session.run_one("query idx sindex_range[30, 45]")
        assert sorted(t.attr("price") for t in r.value) == [30, 33, 36, 39, 42, 45]

    def test_sindex_exact(self, session):
        r = session.run_one("query idx sindex_exact[99]")
        assert [t.attr("sku") for t in r.value] == ["sku033"]

    def test_halfrange_with_bottom(self, session):
        r = session.run_one("query idx sindex_range[bottom, 9] count")
        assert r.value == 4  # 0, 3, 6, 9

    def test_composes_with_streams(self, session):
        r = session.run_one('query idx sindex_range[0, 30] filter[sku != "sku005"] count')
        assert r.value == 10

    def test_wrong_key_type_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one('query idx sindex_range["a", "b"]')

    def test_matches_heap_scan(self, session):
        via_index = session.run_one("query idx sindex_range[60, 120]")
        via_scan = session.run_one(
            "query heap feed filter[fun (i: item) i price >= 60 and i price <= 120]"
        )
        a = sorted(t.attr("sku") for t in via_index.value)
        b = sorted(t.attr("sku") for t in via_scan.value)
        assert a == b


class TestUnclusteredCost:
    def test_each_hit_costs_a_heap_fetch(self, session):
        """The unclustered access pattern: one page read per matching
        tuple, on top of the index descent."""
        before = GLOBAL_PAGES.stats.snapshot()
        r = session.run_one("query idx sindex_range[0, 597] count")
        reads = GLOBAL_PAGES.stats.delta(before).reads
        assert r.value == 200
        assert reads >= 200  # at least one heap fetch per hit

        before = GLOBAL_PAGES.stats.snapshot()
        session.run_one("query heap feed count")
        scan_reads = GLOBAL_PAGES.stats.delta(before).reads
        # A full scan reads each heap page once — far fewer than 200.
        assert scan_reads < 20
