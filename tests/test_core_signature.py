"""Unit tests for the top-level signature (TypeSystem) — E1 groundwork."""

import pytest

from repro.core.constructors import ConstructorSpec, TypeConstructor
from repro.core.kinds import Kind
from repro.core.signature import TypeSystem
from repro.core.sorts import (
    BindSort,
    KindSort,
    ListSort,
    ProductSort,
    TypeSort,
    UnionSort,
)
from repro.core.types import ArgList, ArgTuple, Lit, Sym, TypeApp, tuple_type
from repro.errors import KindError, SpecificationError, TypeFormationError

INT = TypeApp("int")
STRING = TypeApp("string")
IDENT = TypeApp("ident")


@pytest.fixture()
def ts():
    """The relational type system of paper Section 2.1."""
    ts = TypeSystem()
    ident = ts.add_kind("IDENT")
    data = ts.add_kind("DATA")
    tup = ts.add_kind("TUPLE")
    rel = ts.add_kind("REL")
    ts.add_constructor(TypeConstructor("ident", (), ident))
    for name in ("int", "real", "string", "bool"):
        ts.add_constructor(TypeConstructor(name, (), data))
    ts.add_constructor(
        TypeConstructor(
            "tuple",
            (ListSort(ProductSort((TypeSort(IDENT), KindSort(data)))),),
            tup,
        )
    )
    ts.add_constructor(TypeConstructor("rel", (KindSort(tup),), rel))
    return ts


class TestKinds:
    def test_add_and_lookup(self, ts):
        assert ts.kind("DATA") == Kind("DATA")
        assert ts.has_kind_named("REL")

    def test_unknown_kind_raises(self, ts):
        with pytest.raises(KindError):
            ts.kind("NOPE")

    def test_add_kind_idempotent(self, ts):
        assert ts.add_kind("DATA") is ts.kind("DATA")


class TestConstructors:
    def test_duplicate_same_arity_rejected(self, ts):
        with pytest.raises(SpecificationError):
            ts.add_constructor(TypeConstructor("int", (), ts.kind("DATA")))

    def test_overload_by_arity_allowed(self, ts):
        ts.add_constructor(
            TypeConstructor("rel", (KindSort(ts.kind("TUPLE")),) * 2, ts.kind("REL"))
        )
        assert len(ts.overloads("rel")) == 2

    def test_overload_result_kind_must_agree(self, ts):
        with pytest.raises(SpecificationError):
            ts.add_constructor(
                TypeConstructor(
                    "rel", (KindSort(ts.kind("DATA")),) * 3, ts.kind("DATA")
                )
            )

    def test_unknown_result_kind(self, ts):
        with pytest.raises(KindError):
            ts.add_constructor(TypeConstructor("x", (), Kind("NOPE")))

    def test_constant_type(self, ts):
        assert ts.constant_type("int") == INT
        with pytest.raises(TypeFormationError):
            ts.constant_type("tuple")

    def test_constant_types_of_kind(self, ts):
        names = {t.constructor for t in ts.constant_types_of_kind("DATA")}
        assert names == {"int", "real", "string", "bool"}


class TestKindAssignment:
    def test_kind_of(self, ts):
        assert ts.kind_of(INT) == Kind("DATA")
        city = tuple_type([("name", STRING)])
        assert ts.kind_of(city) == Kind("TUPLE")
        assert ts.kind_of(TypeApp("rel", (city,))) == Kind("REL")

    def test_extra_kind_membership(self, ts):
        ts.add_kind("ORD")
        ts.add_kind_member("int", "ORD")
        assert ts.has_kind(INT, "ORD")
        assert ts.has_kind(INT, "DATA")
        assert not ts.has_kind(STRING, "ORD")
        assert INT in ts.constant_types_of_kind("ORD")

    def test_union_kind_membership(self, ts):
        union = UnionSort((KindSort(ts.kind("DATA")), KindSort(ts.kind("REL"))))
        assert ts.has_kind(INT, union)
        assert not ts.has_kind(tuple_type([("a", INT)]), union)


class TestWellFormedness:
    def test_paper_example_type(self, ts):
        t = tuple_type([("name", STRING), ("age", INT)])
        ts.check_type(t)
        ts.check_type(TypeApp("rel", (t,)))

    def test_rel_of_non_tuple_rejected(self, ts):
        with pytest.raises(TypeFormationError):
            ts.check_type(TypeApp("rel", (INT,)))

    def test_wrong_arity_rejected(self, ts):
        with pytest.raises(TypeFormationError):
            ts.check_type(TypeApp("rel", ()))

    def test_unknown_constructor_rejected(self, ts):
        with pytest.raises(TypeFormationError):
            ts.check_type(TypeApp("setof", (INT,)))

    def test_tuple_needs_ident_first_components(self, ts):
        bad = TypeApp("tuple", (ArgList((ArgTuple((INT, INT)),)),))
        with pytest.raises(TypeFormationError):
            ts.check_type(bad)

    def test_tuple_attr_types_must_be_data(self, ts):
        nested = tuple_type([("inner", INT)])
        bad = tuple_type([("x", nested)])  # TUPLE not in DATA
        with pytest.raises(TypeFormationError):
            ts.check_type(bad)

    def test_empty_attribute_list_rejected(self, ts):
        bad = TypeApp("tuple", (ArgList(()),))
        with pytest.raises(TypeFormationError):
            ts.check_type(bad)

    def test_string_length_constructor(self, ts):
        # Section 3: int -> DATA string(4)
        ts.add_constructor(
            TypeConstructor("vstring", (TypeSort(INT),), ts.kind("DATA"))
        )
        ts.check_type(TypeApp("vstring", (Lit(4),)))
        with pytest.raises(TypeFormationError):
            ts.check_type(TypeApp("vstring", (Sym("four"),)))


class TestConstructorSpecs:
    def test_dependent_constraint(self, ts):
        def check(type_system, args):
            tup, sym = args
            from repro.core.types import attr_type

            if attr_type(tup, sym.name) is None:
                return f"no attribute {sym.name}"
            return None

        ts.add_kind("IDX")
        ts.add_constructor(
            TypeConstructor(
                "idx",
                (BindSort("tuple", KindSort(ts.kind("TUPLE"))), TypeSort(IDENT)),
                ts.kind("IDX"),
                spec=ConstructorSpec("attr must exist", check),
            )
        )
        city = tuple_type([("name", STRING)])
        ts.check_type(TypeApp("idx", (city, Sym("name"))))
        with pytest.raises(TypeFormationError):
            ts.check_type(TypeApp("idx", (city, Sym("nope"))))

    def test_union_sort_argument(self, ts):
        # nested relational attr sort: (ident x (DATA | REL))+
        data_or_rel = UnionSort(
            (KindSort(ts.kind("DATA")), KindSort(ts.kind("REL")))
        )
        ts.add_kind("NREL")
        ts.add_constructor(
            TypeConstructor(
                "nrel",
                (ListSort(ProductSort((TypeSort(IDENT), data_or_rel))),),
                ts.kind("NREL"),
            )
        )
        inner = TypeApp("rel", (tuple_type([("a", INT)]),))
        t = TypeApp(
            "nrel",
            (ArgList((ArgTuple((Sym("title"), STRING)), ArgTuple((Sym("sub"), inner)))),),
        )
        ts.check_type(t)
