"""Multi-attribute B-trees with prefix queries.

Section 4 mentions them ("ordered first by one attribute, then for equal
values by a second attribute ... together with a query operator specifying
values for a prefix of the attributes") but omits the definitions for lack
of space; this is that definition, and its tests.
"""

import pytest

from repro.core.types import TypeApp
from repro.errors import NoMatchingOperator, TypeFormationError
from repro.storage import BTree
from repro.storage.io import PageManager


@pytest.fixture()
def session(system):
    system.run(
        """
type person = tuple(<(country, string), (town, string), (age, int)>)
create people_idx : mbtree(person, <(country, string), (town, string)>)
"""
    )
    rows = [
        ("DE", "Hagen", 30),
        ("DE", "Hagen", 40),
        ("DE", "Berlin", 25),
        ("FR", "Lyon", 35),
        ("FR", "Paris", 28),
        ("CH", "Zurich", 50),
    ]
    for country, town, age in rows:
        system.run_one(
            f'update people_idx := insert(people_idx, mktuple[<(country, "{country}"), '
            f'(town, "{town}"), (age, {age})>])'
        )
    return system


class TestTypeSystem:
    def test_well_formed(self, system):
        system.run("type t = tuple(<(a, string), (b, int)>)")
        t = system.interpreter.make_parser().parse_type(
            "mbtree(t, <(a, string), (b, int)>)"
        )
        system.database.sos.type_system.check_type(t)

    def test_unknown_attribute_rejected(self, system):
        system.run("type t = tuple(<(a, string), (b, int)>)")
        bad = system.interpreter.make_parser().parse_type(
            "mbtree(t, <(ghost, string)>)"
        )
        with pytest.raises(TypeFormationError):
            system.database.sos.type_system.check_type(bad)

    def test_wrong_dtype_rejected(self, system):
        system.run("type t = tuple(<(a, string), (b, int)>)")
        bad = system.interpreter.make_parser().parse_type("mbtree(t, <(a, int)>)")
        with pytest.raises(TypeFormationError):
            system.database.sos.type_system.check_type(bad)

    def test_duplicate_key_attr_rejected(self, system):
        system.run("type t = tuple(<(a, string), (b, int)>)")
        bad = system.interpreter.make_parser().parse_type(
            "mbtree(t, <(a, string), (a, string)>)"
        )
        with pytest.raises(TypeFormationError):
            system.database.sos.type_system.check_type(bad)

    def test_subtype_of_relrep(self, session):
        t = session.database.objects["people_idx"].type
        tuple_t = t.args[0]
        assert session.database.sos.subtypes.is_subtype(
            t, TypeApp("relrep", (tuple_t,))
        )


class TestQueries:
    def test_scan_is_lexicographic(self, session):
        r = session.run_one("query people_idx feed")
        keys = [(t.attr("country"), t.attr("town")) for t in r.value]
        assert keys == sorted(keys)

    def test_prefix_one_attribute(self, session):
        r = session.run_one('query people_idx prefix[<"DE">]')
        assert sorted(t.attr("town") for t in r.value) == ["Berlin", "Hagen", "Hagen"]

    def test_prefix_two_attributes(self, session):
        r = session.run_one('query people_idx prefix[<"DE", "Hagen">]')
        assert sorted(t.attr("age") for t in r.value) == [30, 40]

    def test_prefix_no_match(self, session):
        r = session.run_one('query people_idx prefix[<"XX">]')
        assert r.value == []

    def test_prefix_feeds_into_streams(self, session):
        r = session.run_one('query people_idx prefix[<"FR">] filter[age > 30] count')
        assert r.value == 1

    def test_prefix_wrong_type_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one("query people_idx prefix[<42>]")

    def test_prefix_too_long_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one('query people_idx prefix[<"DE", "Hagen", "x">]')


class TestStoragePrefix:
    def test_matches_reference(self):
        import random

        rng = random.Random(4)
        bt = BTree(key=lambda t: (t[0], t[1]), order=4, pages=PageManager())
        items = [(rng.randrange(8), rng.randrange(8), i) for i in range(300)]
        for t in items:
            bt.insert(t)
        for a in range(8):
            assert sorted(bt.prefix_search((a,))) == sorted(
                t for t in items if t[0] == a
            )
            for b in range(8):
                assert sorted(bt.prefix_search((a, b))) == sorted(
                    t for t in items if t[0] == a and t[1] == b
                )

    def test_empty_prefix_scans_all(self):
        bt = BTree(key=lambda t: (t[0],), order=4, pages=PageManager())
        for i in range(10):
            bt.insert((i,))
        assert len(list(bt.prefix_search(()))) == 10
