"""Term pattern matching for rules (Section 5 machinery)."""

import pytest

from repro.core.patterns import PApp, PVar
from repro.core.terms import Apply, Fun, Literal, Var, same_term
from repro.core.typecheck import TypeChecker
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.models.relational import relational_model
from repro.optimizer.termmatch import (
    MatchState,
    RuleVar,
    TypeVar,
    instantiate,
    match_pattern,
)

INT = TypeApp("int")
STRING = TypeApp("string")
CITY = tuple_type([("cname", STRING), ("pop", INT)])
CITIES = rel_type(CITY)


@pytest.fixture()
def env():
    sos, _ = relational_model()
    tc = TypeChecker(sos, object_types={"cities": CITIES}.get)
    return sos, tc


def checked_select(tc, op=">", value=1000):
    return tc.check(
        Apply(
            "select",
            (
                Var("cities"),
                Fun(
                    (("t", CITY),),
                    Apply(op, (Apply("pop", (Var("t"),)), Literal(value))),
                ),
            ),
        )
    )


SELECT_PATTERN = Apply(
    "select",
    (
        Var("rel1"),
        Fun(
            (("t1", TypeVar("tuple1")),),
            Apply(">", (Apply("attr", (Var("t1"),)), Var("c1"))),
        ),
    ),
)

SELECT_VARS = {
    "rel1": RuleVar("rel1", type_pattern=PApp("rel", (PVar("tuple1"),))),
    "attr": RuleVar("attr", fun_args=(TypeVar("tuple1"),), fun_result=TypeVar("dtype")),
    "c1": RuleVar("c1"),
}


class TestMatching:
    def test_select_shape_matches(self, env):
        sos, tc = env
        subject = checked_select(tc)
        state = match_pattern(SELECT_PATTERN, subject, SELECT_VARS, MatchState(), sos)
        assert state is not None
        assert state.tbinds["tuple1"] == CITY
        assert state.op_name("attr") == "pop"
        assert same_term(state.vbinds["c1"], Literal(1000))
        assert same_term(state.vbinds["rel1"], Var("cities"))

    def test_operator_variable_functionality_checked(self, env):
        sos, tc = env
        # cname has result string; attr requires dtype consistent within the
        # match — still fine on its own, so construct a mismatch via c1.
        subject = tc.check(
            Apply(
                "select",
                (
                    Var("cities"),
                    Fun(
                        (("t", CITY),),
                        Apply(">", (Apply("cname", (Var("t"),)), Literal("x"))),
                    ),
                ),
            )
        )
        state = match_pattern(SELECT_PATTERN, subject, SELECT_VARS, MatchState(), sos)
        assert state is not None
        assert state.tbinds["dtype"] == STRING

    def test_different_comparison_op_fails(self, env):
        sos, tc = env
        subject = checked_select(tc, op="<")
        assert match_pattern(SELECT_PATTERN, subject, SELECT_VARS, MatchState(), sos) is None

    def test_alpha_renaming_of_lambda_params(self, env):
        sos, tc = env
        subject = tc.check(
            Apply(
                "select",
                (
                    Var("cities"),
                    Fun(
                        (("zz", CITY),),
                        Apply(">", (Apply("pop", (Var("zz"),)), Literal(5))),
                    ),
                ),
            )
        )
        state = match_pattern(SELECT_PATTERN, subject, SELECT_VARS, MatchState(), sos)
        assert state is not None

    def test_kind_constraint(self, env):
        sos, tc = env
        variables = {"x": RuleVar("x", kind=sos.type_system.kind("REL"))}
        subject = tc.check(Var("cities"))
        assert match_pattern(Var("x"), subject, variables, MatchState(), sos) is not None
        lit = tc.check(Literal(5))
        assert match_pattern(Var("x"), lit, variables, MatchState(), sos) is None

    def test_nonlinear_term_variable(self, env):
        sos, tc = env
        variables = {"x": RuleVar("x")}
        pattern = Apply("+", (Var("x"), Var("x")))
        same = tc.check(Apply("+", (Literal(1), Literal(1))))
        diff = tc.check(Apply("+", (Literal(1), Literal(2))))
        assert match_pattern(pattern, same, variables, MatchState(), sos) is not None
        assert match_pattern(pattern, diff, variables, MatchState(), sos) is None

    def test_concrete_literal_in_pattern(self, env):
        sos, tc = env
        pattern = Apply("+", (Var("x"), Literal(1)))
        variables = {"x": RuleVar("x")}
        ok = tc.check(Apply("+", (Literal(5), Literal(1))))
        bad = tc.check(Apply("+", (Literal(5), Literal(2))))
        assert match_pattern(pattern, ok, variables, MatchState(), sos) is not None
        assert match_pattern(pattern, bad, variables, MatchState(), sos) is None


class TestInstantiation:
    def test_rhs_substitutes_everything(self, env):
        sos, tc = env
        subject = checked_select(tc)
        state = match_pattern(SELECT_PATTERN, subject, SELECT_VARS, MatchState(), sos)
        # bind rep object as a condition would
        rep = Var("cities_rep")
        state.vbinds["bt1"] = rep
        rhs = Apply(
            "filter",
            (
                Apply("range", (Var("bt1"), Var("c1"), Var("top"))),
                Fun(
                    (("t1", TypeVar("tuple1")),),
                    Apply(">", (Apply("attr", (Var("t1"),)), Var("c1"))),
                ),
            ),
        )
        built = instantiate(rhs, state)
        assert built.op == "filter"
        ranged = built.args[0]
        assert same_term(ranged.args[0], Var("cities_rep"))
        assert same_term(ranged.args[1], Literal(1000))
        fun = built.args[1]
        assert fun.params[0][1] == CITY  # TypeVar resolved
        assert fun.body.args[0].op == "pop"  # operator variable resolved

    def test_nested_typevar_in_param_type(self, env):
        sos, tc = env
        state = MatchState(tbinds={"tuple1": CITY})
        template = Fun((("s", TypeApp("stream", (TypeVar("tuple1"),))),), Var("s"))
        built = instantiate(template, state)
        assert built.params[0][1] == TypeApp("stream", (CITY,))
