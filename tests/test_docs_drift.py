"""The code tables in docs/STATIC_ANALYSIS.md must match the registry
behind ``python -m repro lint --codes`` — same codes, same severities.
CI runs this as part of the lint gate, so the document cannot drift.
"""

from __future__ import annotations

import pathlib
import re

from repro.lint.diagnostics import CODES

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "STATIC_ANALYSIS.md"

ROW = re.compile(r"^\|\s*([A-Z]{3}\d{3})\s*\|\s*(error|warn|info)\s*\|")


def documented() -> dict[str, str]:
    rows = {}
    for line in DOC.read_text().splitlines():
        m = ROW.match(line)
        if m:
            rows[m.group(1)] = m.group(2)
    return rows


def test_every_registered_code_is_documented():
    missing = sorted(set(CODES) - set(documented()))
    assert missing == [], f"codes missing from docs/STATIC_ANALYSIS.md: {missing}"


def test_no_documented_code_is_unregistered():
    stale = sorted(set(documented()) - set(CODES))
    assert stale == [], f"docs table lists unknown codes: {stale}"


def test_documented_severities_match_registry():
    mismatches = {
        code: (sev, CODES[code][0])
        for code, sev in documented().items()
        if code in CODES and sev != CODES[code][0]
    }
    assert mismatches == {}, f"severity drift (docs, registry): {mismatches}"
