"""Engine concurrency self-lint (enginepass): each ENG code on synthetic
sources, the Python-comment suppression semantics, and — the acceptance
criterion — a clean run over the real ``src/repro`` tree.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_engine, lint_engine_source
from repro.lint.enginepass import scan_python_suppressions

DECLARED = {"mvcc.commits", "server.statements"}
SITES = {"wal.append", "mvcc.commit"}


def run(source: str):
    return lint_engine_source(
        textwrap.dedent(source),
        "synthetic.py",
        declared_metrics=set(DECLARED),
        fault_sites=set(SITES),
    )


def codes(report) -> list[str]:
    return [d.code for d in report]


class TestENG001:
    ENGINE = """\
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.RLock()
                self.versions = {}
                self.open_transactions = 0

            def bad(self, name):
                self.versions[name] = 1
                self.open_transactions += 1
                self.versions.pop(name, None)

            def good(self, name):
                with self._lock:
                    self.versions[name] = 1
                    self.open_transactions += 1
        """

    def test_unlocked_mutations_flagged(self):
        report = run(self.ENGINE)
        assert codes(report) == ["ENG001", "ENG001", "ENG001"]
        assert {d.subject for d in report} == {
            "versions",
            "open_transactions",
        }

    def test_init_is_exempt(self):
        report = run(self.ENGINE)
        assert all(d.line > 7 for d in report)

    def test_class_without_lock_not_checked(self):
        report = run(
            """\
            class Plain:
                def __init__(self):
                    self.versions = {}

                def mutate(self):
                    self.versions["x"] = 1
            """
        )
        assert codes(report) == []

    def test_nested_function_does_not_inherit_lock_scope(self):
        report = run(
            """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.versions = {}

                def outer(self):
                    with self._lock:
                        def callback():
                            self.versions["x"] = 1
                        return callback
            """
        )
        assert codes(report) == ["ENG001"]


class TestENG002:
    def test_blocking_call_under_lock(self):
        report = run(
            """\
            import threading, time, os

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                def commit(self, fd):
                    with self._lock:
                        time.sleep(0.1)
                        os.fsync(fd)
            """
        )
        assert codes(report) == ["ENG002", "ENG002"]
        assert {d.subject for d in report} == {"sleep", "fsync"}

    def test_blocking_call_outside_lock_is_fine(self):
        report = run(
            """\
            import time

            def pause():
                time.sleep(0.1)
            """
        )
        assert codes(report) == []


class TestENG003:
    def test_sync_engine_call_in_coroutine(self):
        report = run(
            """\
            class Server:
                async def handle(self, request):
                    return self.engine.run_one(request)
            """
        )
        assert codes(report) == ["ENG003"]

    def test_to_thread_wrapped_call_is_fine(self):
        report = run(
            """\
            import asyncio

            class Server:
                async def handle(self, request):
                    return await asyncio.to_thread(
                        self.engine.run_one, request
                    )
            """
        )
        assert codes(report) == []

    def test_blocking_call_in_coroutine(self):
        report = run(
            """\
            import time

            async def handler():
                time.sleep(1)
            """
        )
        assert codes(report) == ["ENG003"]

    def test_asyncio_sleep_is_not_blocking(self):
        report = run(
            """\
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """
        )
        assert codes(report) == []


class TestENG004:
    def test_await_under_sync_lock(self):
        report = run(
            """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()

                async def bad(self):
                    with self._lock:
                        await self.flush()
            """
        )
        assert "ENG004" in codes(report)

    def test_async_with_is_fine(self):
        report = run(
            """\
            class Engine:
                def __init__(self):
                    self._alock = make_async_lock()

                async def good(self):
                    async with self._alock:
                        await self.flush()
            """
        )
        assert "ENG004" not in codes(report)


class TestENG005:
    def test_undeclared_metric_flagged(self):
        report = run(
            """\
            from repro import telemetry

            def record():
                telemetry.incr("mvcc.commits")
                telemetry.incr("mvcc.surprises")
            """
        )
        assert codes(report) == ["ENG005"]
        assert report.diagnostics[0].subject == "mvcc.surprises"

    def test_dynamic_names_skipped(self):
        report = run(
            """\
            from repro import telemetry

            def record(kind):
                telemetry.incr(f"client.retries.{kind}")
            """
        )
        assert codes(report) == []


class TestENG006:
    def test_unregistered_site_flagged(self):
        report = run(
            """\
            from repro.testing.faults import fault_point

            def mutate():
                fault_point("wal.append")
                fault_point("btree.vanish")
            """
        )
        assert codes(report) == ["ENG006"]
        assert report.diagnostics[0].subject == "btree.vanish"


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        report = run(
            """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.versions = {}

                def audited(self):
                    self.versions["x"] = 1  # lint: disable=ENG001 -- held by caller
            """
        )
        assert codes(report) == []

    def test_standalone_comment_block_suppresses_next_code_line(self):
        report = run(
            """\
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.versions = {}

                def audited(self):
                    # lint: disable=ENG001 -- audited: the only caller is
                    # commit(), which already holds self._lock.
                    self.versions["x"] = 1
            """
        )
        assert codes(report) == []

    def test_disable_file(self):
        report = run(
            """\
            # lint: disable-file=ENG001
            import threading

            class Engine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.versions = {}

                def a(self):
                    self.versions["x"] = 1

                def b(self):
                    self.versions["y"] = 2
            """
        )
        assert codes(report) == []

    def test_scan_semantics(self):
        file_wide, by_line = scan_python_suppressions(
            "x = 1  # lint: disable=ENG002\n"
            "# lint: disable=ENG001\n"
            "# more justification\n"
            "y = 2\n"
            "# lint: disable-file=ENG006\n"
        )
        assert file_wide == {"ENG006"}
        assert by_line[1] == {"ENG002"}
        assert by_line[4] == {"ENG001"}


class TestRealTree:
    def test_src_repro_is_clean(self):
        """Every true positive is fixed and every audited false positive
        annotated — the ``lint --self`` acceptance criterion."""
        report = lint_engine()
        assert codes(report) == [], report.render_text()

    def test_real_tree_scan_covers_the_server(self):
        # The walk really visits the concurrency-critical modules: the
        # self-lint proves discipline, not absence of coverage.
        from repro.lint.enginepass import _declared_metrics
        import ast
        import os
        import repro

        root = os.path.dirname(repro.__file__)
        with open(os.path.join(root, "server", "net.py")) as handle:
            declared = _declared_metrics(ast.parse(handle.read()))
        assert "mvcc.commits" in declared
