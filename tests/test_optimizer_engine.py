"""Engine control strategies and safety behaviour ([BeG92] step model)."""

import pytest

from repro.core.terms import Apply, Literal, Var
from repro.errors import OptimizationError
from repro.optimizer.engine import Optimizer, OptimizerStep
from repro.optimizer.rules import RewriteRule, rule_vars
from repro.optimizer.termmatch import RuleVar
from repro.system import build_relational_system


@pytest.fixture()
def db():
    return build_relational_system().database


def _typed(db, text):
    from repro.lang.parser import Parser

    parser = Parser(db.sos, aliases=db.aliases, is_object=db.has_object)
    return db.typechecker.check(parser.parse_expression(text))


def add_zero_rule():
    """x + 0 => x  (a pure simplification rule for strategy testing)."""
    return RewriteRule(
        name="add_zero",
        variables=rule_vars(RuleVar("x")),
        lhs=Apply("+", (Var("x"), Literal(0))),
        rhs=Var("x"),
    )


def wrap_rule():
    """x => x + 0 — deliberately non-terminating under 'exhaustive'."""
    return RewriteRule(
        name="wrap",
        variables=rule_vars(RuleVar("x", kind=None)),
        lhs=Apply("*", (Var("x"), Literal(1))),
        rhs=Apply("*", (Apply("+", (Var("x"), Literal(0))), Literal(1))),
    )


class TestStrategies:
    def test_exhaustive_reaches_fixpoint(self, db):
        term = _typed(db, "((1 + 0) + 0) + 0")
        opt = Optimizer([OptimizerStep("s", [add_zero_rule()], "exhaustive")])
        result = opt.optimize(term, db)
        assert result.fired == ["add_zero"] * 3
        from repro.core.terms import same_term

        assert same_term(result.term, _typed(db, "1"))

    def test_once_topdown_fires_once_per_traversal(self, db):
        term = _typed(db, "((1 + 0) + 0) + 0")
        opt = Optimizer([OptimizerStep("s", [add_zero_rule()], "once_topdown")])
        result = opt.optimize(term, db)
        assert result.fired == ["add_zero"]
        # outermost occurrence rewritten first
        assert same_shape(result.term, _typed(db, "(1 + 0) + 0"))

    def test_once_bottomup_rewrites_innermost(self, db):
        term = _typed(db, "((1 + 0) + 0) + 0")
        opt = Optimizer([OptimizerStep("s", [add_zero_rule()], "once_bottomup")])
        result = opt.optimize(term, db)
        assert result.fired == ["add_zero"]
        assert same_shape(result.term, _typed(db, "(1 + 0) + 0"))

    def test_non_terminating_rule_set_detected(self, db):
        term = _typed(db, "2 * 1")
        opt = Optimizer([OptimizerStep("s", [wrap_rule()], "exhaustive")])
        with pytest.raises(OptimizationError):
            opt.optimize(term, db)

    def test_unknown_strategy_rejected(self, db):
        opt = Optimizer([OptimizerStep("s", [], "sideways")])
        with pytest.raises(OptimizationError):
            opt.optimize(_typed(db, "1"), db)

    def test_steps_run_in_order(self, db):
        double = RewriteRule(
            name="one_to_two",
            variables={},
            lhs=Literal(1),
            rhs=Literal(2),
        )
        halve = RewriteRule(
            name="two_to_three",
            variables={},
            lhs=Literal(2),
            rhs=Literal(3),
        )
        opt = Optimizer(
            [
                OptimizerStep("first", [double], "once_topdown"),
                OptimizerStep("second", [halve], "once_topdown"),
            ]
        )
        result = opt.optimize(_typed(db, "1 + 100"), db)
        assert result.fired == ["one_to_two", "two_to_three"]
        assert same_shape(result.term, _typed(db, "3 + 100"))


class TestSafety:
    def test_ill_typed_rewrite_is_discarded(self, db):
        bad = RewriteRule(
            name="break_types",
            variables=rule_vars(RuleVar("x")),
            lhs=Apply("+", (Var("x"), Literal(0))),
            rhs=Apply("and", (Var("x"), Literal(0))),  # int operands: ill-typed
        )
        term = _typed(db, "5 + 0")
        opt = Optimizer([OptimizerStep("s", [bad], "exhaustive")])
        result = opt.optimize(term, db)
        assert result.fired == []  # the unsound rule never applies


def same_shape(a, b):
    from repro.core.terms import same_term

    return same_term(a, b)
