"""The relational model end to end (experiment E1 + Section 2.2 algebra)."""

import pytest

from repro.core.algebra import Evaluator
from repro.core.typecheck import TypeChecker
from repro.core.terms import Apply, ListTerm, Literal, TupleTerm, Var
from repro.core.types import TypeApp, format_type, rel_type, tuple_type
from repro.errors import TypeFormationError
from repro.models.relational import make_relation, make_tuple, relational_model

INT = TypeApp("int")
STRING = TypeApp("string")

CITY = tuple_type([("name", STRING), ("pop", INT), ("country", STRING)])
CITY_REL = rel_type(CITY)


@pytest.fixture()
def env():
    sos, algebra = relational_model()
    cities = make_relation(
        CITY_REL,
        [
            {"name": "Berlin", "pop": 3_500_000, "country": "Germany"},
            {"name": "Paris", "pop": 2_100_000, "country": "France"},
            {"name": "Hagen", "pop": 210_000, "country": "Germany"},
            {"name": "Lyon", "pop": 520_000, "country": "France"},
        ],
    )
    countries_rel = rel_type(tuple_type([("cc", STRING), ("continent", STRING)]))
    countries = make_relation(
        countries_rel,
        [
            {"cc": "Germany", "continent": "Europe"},
            {"cc": "France", "continent": "Europe"},
        ],
    )
    objects = {"cities": CITY_REL, "countries": countries_rel}
    values = {"cities": cities, "countries": countries}
    tc = TypeChecker(sos, object_types=objects.get)
    ev = Evaluator(algebra, resolver=values.get)
    return sos, tc, ev, values


class TestTypeSystem:
    """E1: the type system of Section 2.1."""

    def test_paper_types_well_formed(self, env):
        sos, *_ = env
        sos.type_system.check_type(CITY)
        sos.type_system.check_type(CITY_REL)

    def test_kinds_match_paper(self, env):
        sos, *_ = env
        names = {k.name for k in sos.type_system.kinds}
        assert {"IDENT", "DATA", "TUPLE", "REL"} <= names

    def test_data_constants(self, env):
        sos, *_ = env
        constants = {
            t.constructor for t in sos.type_system.constant_types_of_kind("DATA")
        }
        assert {"int", "real", "string", "bool"} <= constants

    def test_ill_formed_rel(self, env):
        sos, *_ = env
        with pytest.raises(TypeFormationError):
            sos.type_system.check_type(TypeApp("rel", (INT,)))


class TestQueries:
    def test_select(self, env):
        _, tc, ev, _ = env
        q = tc.check(
            Apply("select", (Var("cities"), Apply(">", (Var("pop"), Literal(1_000_000)))))
        )
        assert sorted(t.attr("name") for t in ev.eval(q)) == ["Berlin", "Paris"]

    def test_select_preserves_operand(self, env):
        _, tc, ev, values = env
        q = tc.check(
            Apply("select", (Var("cities"), Apply(">", (Var("pop"), Literal(10**9)))))
        )
        assert len(ev.eval(q)) == 0
        assert len(values["cities"]) == 4  # selection does not mutate

    def test_join(self, env):
        _, tc, ev, _ = env
        pred = Apply("=", (Var("country"), Var("cc")))
        q = tc.check(Apply("join", (Var("cities"), Var("countries"), pred)))
        rows = ev.eval(q)
        assert len(rows) == 4
        assert all(t.attr("continent") == "Europe" for t in rows)

    def test_union(self, env):
        _, tc, ev, _ = env
        q = tc.check(Apply("union", (ListTerm((Var("cities"), Var("cities"))),)))
        assert len(ev.eval(q)) == 8

    def test_nested_select(self, env):
        _, tc, ev, _ = env
        inner = Apply(
            "select", (Var("cities"), Apply("=", (Var("country"), Literal("France"))))
        )
        outer = tc.check(
            Apply("select", (inner, Apply(">", (Var("pop"), Literal(1_000_000)))))
        )
        assert [t.attr("name") for t in ev.eval(outer)] == ["Paris"]

    def test_mktuple(self, env):
        _, tc, ev, _ = env
        term = tc.check(
            Apply(
                "mktuple",
                (
                    ListTerm(
                        (
                            TupleTerm((Var("name"), Literal("Rome"))),
                            TupleTerm((Var("pop"), Literal(2_800_000))),
                        )
                    ),
                ),
            )
        )
        value = ev.eval(term)
        assert value.attr("name") == "Rome"
        assert format_type(term.type) == "tuple(<(name, string), (pop, int)>)"


class TestUpdates:
    def test_insert(self, env):
        _, tc, ev, values = env
        new = make_tuple(CITY, name="Rome", pop=2_800_000, country="Italy")
        term = tc.check(Apply("insert", (Var("cities"), _tuple_literal(tc, new))))
        out = ev.eval(term, allow_update=True)
        assert len(out) == 5

    def test_delete_by_predicate(self, env):
        _, tc, ev, values = env
        term = tc.check(
            Apply(
                "delete",
                (Var("cities"), Apply("<", (Var("pop"), Literal(1_000_000)))),
            )
        )
        out = ev.eval(term, allow_update=True)
        assert sorted(t.attr("name") for t in out) == ["Berlin", "Paris"]

    def test_modify(self, env):
        _, tc, ev, values = env
        term = tc.check(
            Apply(
                "modify",
                (
                    Var("cities"),
                    Apply("=", (Var("country"), Literal("Germany"))),
                    Var("pop"),
                    Apply("*", (Var("pop"), Literal(2))),
                ),
            )
        )
        out = ev.eval(term, allow_update=True)
        by_name = {t.attr("name"): t.attr("pop") for t in out}
        assert by_name["Berlin"] == 7_000_000
        assert by_name["Paris"] == 2_100_000

    def test_rel_insert(self, env):
        _, tc, ev, values = env
        term = tc.check(Apply("rel_insert", (Var("cities"), Var("cities"))))
        out = ev.eval(term, allow_update=True)
        assert len(out) == 8


def _tuple_literal(tc, tup):
    """Wrap an existing tuple value as a literal term of its type."""
    from repro.core.terms import Literal as Lit

    lit = Lit(tup)
    lit.type = tup.schema
    return lit
