"""Sort-merge equi-join operator and its translation rule."""

import pytest

from repro.core.terms import Apply, walk_terms
from repro.errors import NoMatchingOperator


@pytest.fixture()
def session(system):
    system.run(
        """
type emp = tuple(<(ename, string), (dept, string)>)
type dep = tuple(<(dname, string), (budget, int)>)
create emps : rel(emp)
create deps : rel(dep)
create emps_rep : srel(emp)
create deps_rep : srel(dep)
update rep := insert(rep, emps, emps_rep)
update rep := insert(rep, deps, deps_rep)
"""
    )
    from repro.models.relational import make_tuple

    emp_t = system.database.aliases["emp"]
    dep_t = system.database.aliases["dep"]
    emps = system.database.objects["emps_rep"].value
    deps = system.database.objects["deps_rep"].value
    for name, dept in [
        ("ann", "dev"),
        ("bob", "dev"),
        ("cia", "ops"),
        ("dan", "hr"),
        ("eve", "ghost"),  # dangling: no matching department
    ]:
        emps.append(make_tuple(emp_t, ename=name, dept=dept))
    for dname, budget in [("dev", 100), ("ops", 50), ("hr", 30), ("idle", 7)]:
        deps.append(make_tuple(dep_t, dname=dname, budget=budget))
    return system


def expected_pairs():
    return sorted(
        [("ann", "dev"), ("bob", "dev"), ("cia", "ops"), ("dan", "hr")]
    )


class TestMergeJoinOperator:
    def test_direct_use(self, session):
        r = session.run_one(
            "query emps_rep feed deps_rep feed merge_join[dept, dname]"
        )
        pairs = sorted((t.attr("ename"), t.attr("dname")) for t in r.value)
        assert pairs == expected_pairs()

    def test_duplicate_groups_cross_product(self, session):
        # join deps with itself on budget-less keys: dev x dev etc.
        r = session.run_one(
            "query emps_rep feed emps_rep feed "
            "project[<(d2, fun (e: emp) e dept)>] merge_join[dept, d2]"
        )
        # dev group: 2x2=4, ops 1, hr 1, ghost 1 -> 7
        assert len(r.value) == 7

    def test_attribute_type_mismatch_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one(
                "query emps_rep feed deps_rep feed merge_join[dept, budget]"
            )

    def test_unknown_attribute_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one(
                "query emps_rep feed deps_rep feed merge_join[ghost, dname]"
            )


class TestEquiJoinRule:
    def test_model_equi_join_uses_merge_join(self, session):
        r = session.run_one("query emps deps join[dept = dname]")
        assert r.fired == ["equi_join_merge"]
        ops = [n.op for n in walk_terms(r.translated_term) if isinstance(n, Apply)]
        assert ops[0] == "merge_join"
        pairs = sorted((t.attr("ename"), t.attr("dname")) for t in r.value)
        assert pairs == expected_pairs()

    def test_results_match_scan_join(self, session):
        merge = session.run_one("query emps deps join[dept = dname]")
        scan = session.run_one(
            "query emps_rep feed "
            "fun (e: emp) deps_rep feed filter[fun (d: dep) e dept = d dname] "
            "search_join"
        )
        a = sorted((t.attr("ename"), t.attr("dname")) for t in merge.value)
        b = sorted((t.attr("ename"), t.attr("dname")) for t in scan.value)
        assert a == b

    def test_hash_join_direct(self, session):
        r = session.run_one(
            "query emps_rep feed deps_rep feed hash_join[dept, dname]"
        )
        pairs = sorted((t.attr("ename"), t.attr("dname")) for t in r.value)
        assert pairs == expected_pairs()

    def test_cost_based_prefers_hash_join(self, session):
        from repro.optimizer import cost_based_optimizer

        session.optimizer = cost_based_optimizer()
        r = session.run_one("query emps deps join[dept = dname]")
        assert r.fired == ["equi_join_hash"]
        pairs = sorted((t.attr("ename"), t.attr("dname")) for t in r.value)
        assert pairs == expected_pairs()

    def test_non_equi_join_falls_back(self, session):
        r = session.run_one(
            "query emps deps join[fun (e: emp, d: dep) d budget > 40]"
        )
        assert r.fired == ["join_scan"]
        assert len(r.value) == 10  # 5 emps x 2 rich departments
