"""Statistics-driven cost estimation and plan choice.

The acceptance scenario for the statistics catalog: an equi-join whose
index nested-loop plan the textbook constants misprice.  With 200 outer
rows against a 4000-row B-tree on a *unique* key, each probe returns one
row and the index plan is far cheaper than the hash join — but the
textbook constants assume a fixed 1 % match fraction per probe (40 rows
here), so the cost-based optimizer picks the hash join until ``analyze``
tells it better.
"""

from __future__ import annotations

import pytest

from repro import observe
from repro.api import connect
from repro.models.relational import make_tuple
from repro.optimizer.standard_rules import cost_based_optimizer
from repro.stats.analyze import analyze_objects

JOIN = "query orders customers join[cust = cid]"


def _join_session(n_orders=200, n_customers=4000, distinct_keys=None):
    """Orders (srel) joining customers (btree on cid).  ``distinct_keys``
    caps the number of distinct cid values (defaults to unique keys)."""
    session = connect(optimizer=cost_based_optimizer())
    session.run(
        """
type order = tuple(<(oid, int), (cust, int)>)
type customer = tuple(<(cid, int), (cname, string)>)
create orders : rel(order)
create customers : rel(customer)
create orders_rep : srel(order)
create customers_rep : btree(customer, cid, int)
update rep := insert(rep, orders, orders_rep)
update rep := insert(rep, customers, customers_rep)
"""
    )
    db = session.database
    order_t = db.aliases["order"]
    cust_t = db.aliases["customer"]
    orders = db.objects["orders_rep"].value
    custs = db.objects["customers_rep"].value
    keys = distinct_keys or n_customers
    for i in range(n_orders):
        orders.append(make_tuple(order_t, oid=i, cust=(i * 13) % keys))
    for i in range(n_customers):
        custs.insert(make_tuple(cust_t, cid=i % keys, cname=f"c{i}"))
    return session


class TestPlanChoice:
    def test_analyze_flips_hash_join_to_index_join(self):
        session = _join_session()
        textbook = session.run_one(JOIN)
        assert textbook.fired == ["equi_join_hash"]
        analyze_objects(session.database, ["orders", "customers"])
        informed = session.run_one(JOIN)
        assert informed.fired == ["equi_join_index"]
        # Same answer either way.
        assert len(informed.value) == len(textbook.value) == 200

    def test_low_distinct_key_keeps_hash_join(self):
        # 5 distinct cid values: every index probe would return 800 rows,
        # so the hash join stays cheaper even with perfect statistics.
        session = _join_session(distinct_keys=5)
        analyze_objects(session.database, ["orders", "customers"])
        result = session.run_one(JOIN)
        assert result.fired == ["equi_join_hash"]

    def test_stale_stats_withdraw_the_index_candidate(self):
        session = _join_session()
        analyze_objects(session.database, ["orders", "customers"])
        # The inner relation doubled since analyze: the entry is stale and
        # the StatsCondition on the index rule refuses to fire it.
        session.database.stats.note_rowcount("customers_rep", 8000)
        assert session.database.stats.get("customers_rep").stale
        result = session.run_one(JOIN)
        assert result.fired == ["equi_join_hash"]


class TestEstimates:
    def test_histogram_range_estimate_beats_constant(self, loaded_system):
        from repro.optimizer.cost import estimate

        db = loaded_system.database
        parser = loaded_system.interpreter.make_parser()

        def plan_cost(text):
            stmt = parser.parse_statement(f"query {text}")
            return estimate(db.typechecker.check(stmt.expr), db)

        wide = "cities_rep feed filter[pop >= 0] count"
        narrow = "cities_rep feed filter[pop >= 9990] count"
        # Textbook constants price both filters identically...
        assert plan_cost(wide) == plan_cost(narrow)
        analyze_objects(db, ["cities"])
        # ...the histogram tells the selective one produces fewer rows.
        assert plan_cost(narrow) < plan_cost(wide)

    def test_stats_rowcount_replaces_default_size(self, loaded_system):
        from repro.optimizer.cost import estimate_with_cardinalities

        db = loaded_system.database
        parser = loaded_system.interpreter.make_parser()
        stmt = parser.parse_statement("query cities_rep feed count")
        term = db.typechecker.check(stmt.expr)
        analyze_objects(db, ["cities"])
        _, cards = estimate_with_cardinalities(term, db)
        assert cards["feed"] == 40.0

    def test_observed_selectivity_wins_over_histogram(self, loaded_system):
        from repro.core.terms import format_term
        from repro.optimizer.cost import estimate_with_cardinalities

        db = loaded_system.database
        analyze_objects(db, ["cities"])
        parser = loaded_system.interpreter.make_parser()
        stmt = parser.parse_statement(
            "query cities_rep feed filter[pop >= 5000] count"
        )
        term = db.typechecker.check(stmt.expr)
        pred = _first_filter_pred(term)
        db.stats.record_observed("cities_rep", format_term(pred), 0.25)
        _, cards = estimate_with_cardinalities(term, db)
        assert cards["filter"] == pytest.approx(10.0)


class TestCounters:
    def test_stats_hit_and_miss_counters(self, loaded_system):
        from repro.optimizer.cost import estimate

        db = loaded_system.database
        parser = loaded_system.interpreter.make_parser()
        stmt = parser.parse_statement("query cities_rep feed count")
        term = db.typechecker.check(stmt.expr)
        with observe.collecting() as cold:
            estimate(term, db)
        assert cold.counters.get("cost.stats_miss", 0) > 0
        assert "cost.stats_hit" not in cold.counters
        analyze_objects(db, ["cities"])
        with observe.collecting() as warm:
            estimate(term, db)
        assert warm.counters.get("cost.stats_hit", 0) > 0

    def test_sample_fallback_counter(self, loaded_system):
        from repro.core.terms import Var
        from repro.optimizer.cost import FILTER_SELECTIVITY, sampled_selectivity

        db = loaded_system.database
        with observe.collecting() as sink:
            # Not a structure-naming source term: the silent constant
            # fallback, now accounted.
            sel = sampled_selectivity(Var("pred"), Var("ghost"), db)
        assert sel == FILTER_SELECTIVITY
        assert sink.counters["cost.sample_fallback"] == 1

    def test_explain_reports_estimate_basis(self, loaded_system):
        analyze_objects(loaded_system.database, ["cities"])
        info = loaded_system.explain("cities select[pop >= 5000]")
        assert any(k.startswith("cost.") for k in info["cost_counters"])


def _first_filter_pred(term):
    from repro.core.terms import Apply

    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, Apply):
            if node.op == "filter":
                return node.args[1]
            stack.extend(node.args)
    raise AssertionError("no filter in plan")
