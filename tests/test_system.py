"""The SOS system front end: classification and mixed-program processing."""

import pytest

from repro.core.types import TypeApp, rel_type, tuple_type
from repro.errors import CatalogError, OptimizationError
from repro.system import build_model_interpreter

INT = TypeApp("int")


class TestLevelClassification:
    def test_type_levels(self, system):
        db = system.database
        city = tuple_type([("a", INT)])  # note: attr name 'a' reused below
        assert db.level_of_type(city) == "hybrid"
        assert db.level_of_type(rel_type(city)) == "model"
        from repro.core.types import Sym

        btree_t = TypeApp("btree", (city, Sym("a"), TypeApp("int")))
        assert db.level_of_type(btree_t) == "rep"
        assert db.level_of_type(TypeApp("srel", (city,))) == "rep"
        assert db.level_of_type(TypeApp("stream", (city,))) == "rep"
        assert db.level_of_type(TypeApp("catalog", (TypeApp("ident"),))) == "hybrid"

    def test_mixed_level_type_rejected(self, system):
        db = system.database
        # a relation of streams mixes model and rep constructors
        bad = TypeApp("rel", (TypeApp("srel", (tuple_type([("a", INT)]),)),))
        with pytest.raises(CatalogError):
            db.level_of_type(bad)

    def test_statement_levels(self, loaded_system):
        r = loaded_system.run_one("query cities_rep feed count")
        assert r.level == "rep"
        r = loaded_system.run_one("query 1 + 1")
        assert r.level == "hybrid"
        r = loaded_system.run_one("query cities select[pop >= 0]")
        assert r.level == "model"


class TestQueryProcessing:
    def test_hybrid_query_executes_directly(self, system):
        r = system.run_one("query 2 * 3 + 1")
        assert r.value == 7
        assert not r.translated

    def test_model_query_requires_catalog_entry(self, system):
        system.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
"""
        )
        with pytest.raises(OptimizationError):
            system.run_one("query r select[a > 0]")

    def test_query_convenience_method(self, loaded_system):
        result = loaded_system.query("cities_rep feed count")
        assert result.value == 40
        assert result.kind == "query"

    def test_model_create_leaves_object_virtual(self, system):
        system.run("type t = tuple(<(a, int)>)")
        system.run_one("create r : rel(t)")
        assert system.database.objects["r"].value is None

    def test_rep_create_initializes(self, system):
        system.run("type t = tuple(<(a, int)>)")
        system.run_one("create r : srel(t)")
        assert system.database.objects["r"].value is not None


class TestModelInterpreter:
    def test_direct_model_execution(self):
        interp = build_model_interpreter()
        interp.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
update r := insert(r, mktuple[<(a, 5)>])
"""
        )
        result = interp.run_one("query r select[a = 5]")
        assert len(result.value.rows) == 1

    def test_model_and_translated_results_agree(self, loaded_system):
        """The same logical database, queried via translation, agrees with a
        model-level database loaded with the same rows."""
        translated = loaded_system.run_one("query cities select[pop >= 5000]")
        # rebuild at model level from the representation contents
        interp = build_model_interpreter()
        interp.run(
            """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
"""
        )
        rel = interp.database.objects["cities"].value
        bt = loaded_system.database.objects["cities_rep"].value
        for t in bt.scan():
            rel.insert(t)
        direct = interp.run_one("query cities select[pop >= 5000]")
        a = sorted(t.attr("cname") for t in translated.value)
        b = sorted(t.attr("cname") for t in direct.value.rows)
        assert a == b
