"""Type pattern matching — reproduces Figure 1 of the paper (E7)."""

import pytest

from repro.core.patterns import (
    PAny,
    PApp,
    PBind,
    PFun,
    PList,
    PLit,
    PSym,
    PTuple,
    PVar,
    instantiate_pattern,
    match_type,
    pattern_variables,
)
from repro.core.types import (
    ArgList,
    ArgTuple,
    FunType,
    Lit,
    Sym,
    TypeApp,
    tuple_type,
)

INT = TypeApp("int")
STRING = TypeApp("string")

PERSON = tuple_type([("name", STRING), ("age", INT)])
STREAM_PERSON = TypeApp("stream", (PERSON,))


class TestFigure1:
    """The term tree / pattern of the paper's Figure 1."""

    FIG1 = PBind(
        "stream",
        PApp("stream", (PBind("tuple", PApp("tuple", (PVar("list"),))),)),
    )

    def test_pattern_matches_and_binds_all_variables(self):
        bindings = match_type(self.FIG1, STREAM_PERSON)
        assert bindings is not None
        assert bindings["stream"] == STREAM_PERSON
        assert bindings["tuple"] == PERSON
        assert bindings["list"] == PERSON.args[0]

    def test_bound_list_holds_the_attribute_pairs(self):
        bindings = match_type(self.FIG1, STREAM_PERSON)
        pairs = bindings["list"]
        assert isinstance(pairs, ArgList)
        assert pairs.items[0] == ArgTuple((Sym("name"), STRING))

    def test_wrong_outer_constructor_fails(self):
        assert match_type(self.FIG1, TypeApp("srel", (PERSON,))) is None

    def test_inner_node_must_be_tuple(self):
        assert match_type(self.FIG1, TypeApp("stream", (INT,))) is None


class TestMatching:
    def test_pvar_binds_anything(self):
        assert match_type(PVar("x"), INT) == {"x": INT}

    def test_nonlinear_pattern_requires_equal(self):
        # union: rel+ -> rel relies on repeated variables matching equally
        pattern = PApp("pair", (PVar("x"), PVar("x")))
        ok = TypeApp("pair", (INT, INT))
        bad = TypeApp("pair", (INT, STRING))
        assert match_type(pattern, ok) is not None
        assert match_type(pattern, bad) is None

    def test_existing_bindings_are_respected(self):
        assert match_type(PVar("x"), INT, {"x": STRING}) is None
        assert match_type(PVar("x"), INT, {"x": INT}) == {"x": INT}

    def test_input_bindings_not_mutated(self):
        seed = {}
        match_type(PVar("x"), INT, seed)
        assert seed == {}

    def test_psym_plit(self):
        assert match_type(PSym("pop"), Sym("pop")) is not None
        assert match_type(PSym("pop"), Sym("name")) is None
        assert match_type(PLit(4), Lit(4)) is not None
        assert match_type(PLit(4), Lit(5)) is None

    def test_plist_matches_every_item(self):
        pattern = PList(PTuple((PAny(), PVar("t"))))
        same = ArgList((ArgTuple((Sym("a"), INT)), ArgTuple((Sym("b"), INT))))
        mixed = ArgList((ArgTuple((Sym("a"), INT)), ArgTuple((Sym("b"), STRING))))
        assert match_type(pattern, same) is not None
        assert match_type(pattern, mixed) is None  # non-linear t

    def test_pfun(self):
        pattern = PFun((PVar("a"),), PVar("r"))
        t = FunType((PERSON,), TypeApp("bool"))
        bindings = match_type(pattern, t)
        assert bindings == {"a": PERSON, "r": TypeApp("bool")}

    def test_arity_mismatch(self):
        assert match_type(PApp("rel", (PVar("t"),)), TypeApp("rel", ())) is None


class TestInstantiation:
    def test_roundtrip(self):
        pattern = PApp("rel", (PVar("t"),))
        t = TypeApp("rel", (PERSON,))
        bindings = match_type(pattern, t)
        assert instantiate_pattern(pattern, bindings) == t

    def test_subtype_rule_shape(self):
        # btree(tuple, attr, dtype) instantiated as relrep(tuple)
        bindings = match_type(
            PApp("btree", (PVar("tuple"), PVar("a"), PVar("d"))),
            TypeApp("btree", (PERSON, Sym("age"), INT)),
        )
        sup = instantiate_pattern(PApp("relrep", (PVar("tuple"),)), bindings)
        assert sup == TypeApp("relrep", (PERSON,))

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            instantiate_pattern(PVar("nope"), {})


class TestPatternVariables:
    def test_collects_all(self):
        pattern = PBind(
            "s", PApp("stream", (PBind("t", PApp("tuple", (PVar("l"),))),))
        )
        assert pattern_variables(pattern) == {"s", "t", "l"}
