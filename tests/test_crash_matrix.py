"""The crash matrix: kill the process at every durability fault site and
prove recovery lands on exactly the state after the last committed
statement.

Crash model: an :class:`InjectedFault` at a WAL site plays the part of the
process dying mid-write (the bytes written before the site are flushed to
the OS, the bytes after it are not); "rebooting" is simply abandoning the
session object — no ``close()``, which would flush — and calling
``connect(data_dir=...)`` again.  Expected states are built by replaying
the committed statement prefix on a fresh in-memory session and comparing
``dump()`` texts, so the assertion covers the catalog, every stored tuple
and the rep entries at once.

Per-site ground truth (``group_commit=1``, so one statement is three
appends — begin, stmt, commit — and one fsync):

``wal.append`` hit 1/2
    the begin/stmt record is torn; the statement never executed, recovery
    truncates the tail → last committed state.
``wal.append`` hit 3
    the *commit* record is torn; the statement executed but was never
    acknowledged (``run_one`` raised) → recovery discards it.
``wal.fsync``
    fires before the ``fsync`` syscall, but the commit record is already
    flushed to the OS — a process crash loses nothing → the statement
    survives even though it was not acknowledged (allowed: durability
    promises acknowledged ⇒ survives, not the converse).
``wal.checkpoint.write`` / ``wal.checkpoint.swap`` hit 1
    the snapshot dies as a ``.tmp`` file (or just before the rename);
    the old epoch stays authoritative → state unchanged.
``wal.checkpoint.swap`` hit 2
    the rename happened; the new checkpoint is authoritative and its WAL
    does not exist yet → state unchanged, epoch advanced.
``recovery.replay``
    the crash happens *during recovery*; a second recovery attempt must
    still land on the committed state (recovery is idempotent because it
    never writes to the log it replays).

The multi-session sites (``MVCC_FAULT_SITES``) extend the matrix to the
server stack:

``mvcc.commit``
    the process dies after the first-committer-wins check, before the
    transaction is published or logged → the transaction is lost.
``mvcc.publish``
    the process dies after the in-memory publish but before any WAL
    record is appended — the acknowledgement was never sent → the
    transaction is lost on recovery.
``server.ack``
    the connection dies after the commit is synced but before the client
    hears about it → the statement survives recovery (acknowledged ⇒
    durable holds; the converse needn't).
"""

import os

import pytest

from repro.api import connect
from repro.testing import InjectedFault, clear_faults, inject

SETUP = [
    "type item = tuple(<(k, int), (name, string)>)",
    "create items : rel(item)",
    "create items_rep : btree(item, k, int)",
    "update rep := insert(rep, items, items_rep)",
    'update items := insert(items, mktuple[<(k, 1), (name, "one")>])',
    'update items := insert(items, mktuple[<(k, 2), (name, "two")>])',
]
VICTIM = 'update items := insert(items, mktuple[<(k, 3), (name, "three")>])'
VICTIM2 = 'update items := insert(items, mktuple[<(k, 4), (name, "four")>])'


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    clear_faults()


def expected_dump(statements):
    """The dump an in-memory session produces after ``statements``."""
    db = connect()
    for text in statements:
        db.run_one(text)
    return db.dump()


def open_db(tmp_path, **kwargs):
    kwargs.setdefault("checkpoint_interval", 0)
    return connect(data_dir=str(tmp_path / "db"), **kwargs)


def prepared(tmp_path):
    db = open_db(tmp_path)
    for text in SETUP:
        db.run_one(text)
    return db


# --------------------------------------------------------------------------
# wal.append — torn log records
# --------------------------------------------------------------------------


@pytest.mark.parametrize("at", [1, 2], ids=["begin-record", "stmt-record"])
def test_torn_append_loses_unexecuted_statement(tmp_path, at):
    db = prepared(tmp_path)
    with inject("wal.append", at=at) as plan:
        with pytest.raises(InjectedFault):
            db.run_one(VICTIM)
        assert plan.triggered
    # crash: abandon the session, reboot the directory
    recovered = open_db(tmp_path)
    assert recovered.dump() == expected_dump(SETUP)
    # the truncated log must remain appendable: commit one more statement
    # and survive another reboot
    recovered.run_one(VICTIM2)
    again = open_db(tmp_path)
    assert again.dump() == expected_dump(SETUP + [VICTIM2])


def test_torn_commit_record_discards_executed_statement(tmp_path):
    db = prepared(tmp_path)
    with inject("wal.append", at=3) as plan:  # hit 3 = the commit record
        with pytest.raises(InjectedFault):
            db.run_one(VICTIM)
        assert plan.triggered
    recovered = open_db(tmp_path)
    # executed in the old session, but never acknowledged: gone after crash
    assert recovered.dump() == expected_dump(SETUP)


# --------------------------------------------------------------------------
# wal.fsync — crash between flush and fsync
# --------------------------------------------------------------------------


@pytest.mark.parametrize("at", [1, 2], ids=["first-fsync", "second-fsync"])
def test_crash_at_fsync_keeps_flushed_commits(tmp_path, at):
    db = prepared(tmp_path)
    victims = [VICTIM, VICTIM2][:at]
    with inject("wal.fsync", at=at) as plan:
        for text in victims[:-1]:
            db.run_one(text)
        with pytest.raises(InjectedFault):
            db.run_one(victims[-1])
        assert plan.triggered
    recovered = open_db(tmp_path)
    # every commit record was flushed before the fsync site fired
    assert recovered.dump() == expected_dump(SETUP + victims)


# --------------------------------------------------------------------------
# checkpoint sites — the epoch roll is crash-safe on either side
# --------------------------------------------------------------------------


@pytest.mark.parametrize("at", [1, 2], ids=["first-hit", "second-hit"])
def test_torn_checkpoint_write_leaves_old_epoch_authoritative(tmp_path, at):
    db = prepared(tmp_path)
    with inject("wal.checkpoint.write", at=at) as plan:
        for _ in range(at - 1):
            db.checkpoint()  # below the trigger count: succeeds
        with pytest.raises(InjectedFault):
            db.checkpoint()
        assert plan.triggered
    # the half-written snapshot is a .tmp file recovery must ignore
    data_dir = tmp_path / "db"
    assert any(name.endswith(".tmp") for name in os.listdir(data_dir))
    recovered = open_db(tmp_path)
    assert recovered.durability.epoch == at - 1
    assert recovered.dump() == expected_dump(SETUP)


def test_crash_before_checkpoint_rename(tmp_path):
    db = prepared(tmp_path)
    with inject("wal.checkpoint.swap", at=1) as plan:
        with pytest.raises(InjectedFault):
            db.checkpoint()
        assert plan.triggered
    recovered = open_db(tmp_path)
    assert recovered.durability.epoch == 0  # old epoch still authoritative
    assert recovered.dump() == expected_dump(SETUP)


def test_crash_after_checkpoint_rename(tmp_path):
    db = prepared(tmp_path)
    with inject("wal.checkpoint.swap", at=2) as plan:
        with pytest.raises(InjectedFault):
            db.checkpoint()
        assert plan.triggered
    recovered = open_db(tmp_path)
    # the rename committed the checkpoint: new epoch, nothing to replay
    assert recovered.durability.epoch == 1
    assert recovered.durability.replayed_statements == 0
    assert recovered.dump() == expected_dump(SETUP)


# --------------------------------------------------------------------------
# recovery.replay — crashing during recovery itself
# --------------------------------------------------------------------------


@pytest.mark.parametrize("at", [1, 2], ids=["first-replay", "second-replay"])
def test_crash_during_recovery_then_recover_again(tmp_path, at):
    prepared(tmp_path)  # abandoned: simulate the original process dying
    with inject("recovery.replay", at=at) as plan:
        with pytest.raises(InjectedFault):
            open_db(tmp_path)
        assert plan.triggered
    # recovery never writes to the log it replays, so a second attempt
    # after the "reboot" sees the identical committed prefix
    recovered = open_db(tmp_path)
    assert recovered.durability.replayed_statements == len(SETUP)
    assert recovered.dump() == expected_dump(SETUP)


# --------------------------------------------------------------------------
# mvcc.* — crashing inside the multi-session commit protocol
# --------------------------------------------------------------------------


def prepared_engine(tmp_path):
    from repro.server import MVCCEngine

    engine = MVCCEngine(data_dir=str(tmp_path / "db"), checkpoint_interval=0)
    session = engine.session()
    for text in SETUP:
        session.run_one(text)
    return engine, session


@pytest.mark.parametrize(
    "site",
    ["mvcc.commit", "mvcc.publish"],
    ids=["before-publish", "before-wal"],
)
def test_crash_mid_mvcc_commit_loses_the_transaction(tmp_path, site):
    engine, session = prepared_engine(tmp_path)
    session.begin()
    session.run_one(VICTIM)
    with inject(site) as plan:
        with pytest.raises(InjectedFault):
            session.commit()
        assert plan.triggered
    # crash: abandon the engine (no close, which would flush) and reboot.
    # Neither site reaches the WAL, so the victim is lost either way —
    # mvcc.publish made it visible in the dying process's memory only.
    recovered = open_db(tmp_path)
    assert recovered.dump() == expected_dump(SETUP)
    # the log is still appendable after the reboot
    recovered.run_one(VICTIM2)
    again = open_db(tmp_path)
    assert again.dump() == expected_dump(SETUP + [VICTIM2])


def test_committed_mvcc_transaction_survives_reboot(tmp_path):
    engine, session = prepared_engine(tmp_path)
    session.begin()
    session.run_one(VICTIM)
    session.commit()
    recovered = open_db(tmp_path)  # abandon the engine without close()
    assert recovered.dump() == expected_dump(SETUP + [VICTIM])


# --------------------------------------------------------------------------
# server.ack — the connection dies between durable commit and the reply
# --------------------------------------------------------------------------


def test_crash_at_ack_keeps_the_acknowledged_prefix(tmp_path):
    from repro.errors import ProtocolError
    from repro.server import start_server

    data_dir = str(tmp_path / "db")
    with start_server(data_dir=data_dir, group_commit=1) as handle:
        db = connect(handle.address)
        for text in SETUP:
            db.run_one(text)
        with inject("server.ack") as plan:
            with pytest.raises(ProtocolError):
                db.run_one(VICTIM)
            assert plan.triggered
    # the server synced the commit before dropping the connection: the
    # unacknowledged statement is durable
    recovered = connect(data_dir=data_dir)
    assert recovered.dump() == expected_dump(SETUP + [VICTIM])
