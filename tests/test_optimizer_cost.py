"""The cost model and cost-based rule choice (Gral-style refinement)."""

import pytest

from repro.optimizer.cost import estimate
from repro.optimizer.standard_rules import (
    cost_based_optimizer,
    misordered_optimizer,
)


@pytest.fixture()
def db(loaded_system):
    return loaded_system.database


def _plan(loaded_system, text):
    statement = loaded_system.interpreter.make_parser().parse_statement(text)
    return loaded_system.database.typechecker.check(statement.expr)


class TestCostModel:
    def test_range_cheaper_than_scan(self, loaded_system, db):
        scan = _plan(loaded_system, "query cities_rep feed filter[pop >= 9000]")
        ranged = _plan(loaded_system, "query cities_rep range[9000, top]")
        assert estimate(ranged, db) < estimate(scan, db)

    def test_index_join_cheaper_than_scan_join(self, loaded_system, db):
        scan = _plan(
            loaded_system,
            "query cities_rep feed "
            "fun (c: city) states_rep feed filter[fun (s: state) c center inside s region] "
            "search_join",
        )
        index = _plan(
            loaded_system,
            "query cities_rep feed "
            "fun (c: city) states_rep (c center) point_search "
            "filter[fun (s: state) c center inside s region] "
            "search_join",
        )
        assert estimate(index, db) < estimate(scan, db)

    def test_model_plans_are_penalized(self, loaded_system, db):
        model = _plan(loaded_system, "query cities select[pop >= 9000]")
        rep = _plan(loaded_system, "query cities_rep feed filter[pop >= 9000]")
        assert estimate(model, db) > 1e9
        assert estimate(rep, db) < 1e9

    def test_uses_actual_structure_sizes(self, loaded_system, db):
        feed = _plan(loaded_system, "query cities_rep feed")
        assert estimate(feed, db) == pytest.approx(40.0)  # 40 loaded cities


class TestSampledSelectivity:
    def test_sampling_reflects_the_data(self, loaded_system, db):
        """Predicates of very different selectivity get equal costs with the
        textbook constant, different costs with data-aware sampling."""
        everything = _plan(loaded_system, "query cities_rep feed filter[pop >= 0]")
        nothing = _plan(
            loaded_system, "query cities_rep feed filter[pop >= 99999999]"
        )
        assert estimate(everything, db) == estimate(nothing, db)
        # cardinalities drive downstream cost; compare on a consuming plan
        down_all = _plan(
            loaded_system, "query cities_rep feed filter[pop >= 0] collect"
        )
        down_none = _plan(
            loaded_system,
            "query cities_rep feed filter[pop >= 99999999] collect",
        )
        assert estimate(down_all, db, sample=True) > estimate(
            down_none, db, sample=True
        )

    def test_sampling_never_crashes_on_odd_plans(self, loaded_system, db):
        plan = _plan(loaded_system, "query cities_rep feed count")
        assert estimate(plan, db, sample=True) > 0


class TestCostBasedChoice:
    def test_order_insensitive_plan_quality(self, loaded_system):
        """With worst-first rule order, first-match produces a scan plan;
        cost-based choice still finds the index plan."""
        loaded_system.optimizer = misordered_optimizer()
        r = loaded_system.run_one("query cities select[pop >= 9000]")
        assert r.fired == ["select_scan"]

        loaded_system.optimizer = cost_based_optimizer(shuffled=True)
        r = loaded_system.run_one("query cities select[pop >= 9000]")
        assert r.fired == ["select_ge_btree_range"]

    def test_cost_based_spatial_join(self, loaded_system):
        loaded_system.optimizer = cost_based_optimizer(shuffled=True)
        r = loaded_system.run_one("query cities states join[center inside region]")
        assert r.fired == ["join_inside_lsdtree"]
        assert len(r.value) == 40

    def test_cost_based_results_match_first_match(self, loaded_system):
        from repro.optimizer.standard_rules import standard_optimizer

        loaded_system.optimizer = standard_optimizer()
        a = loaded_system.run_one("query cities select[pop >= 5000]").value
        loaded_system.optimizer = cost_based_optimizer()
        b = loaded_system.run_one("query cities select[pop >= 5000]").value
        assert sorted(t.attr("cname") for t in a) == sorted(
            t.attr("cname") for t in b
        )
