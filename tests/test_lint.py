"""The static analyzer (repro.lint): spec pass, rule pass, suppressions.

The seeded ``BAD_SPEC`` fixture packs one instance of each signature
defect; the rule fixtures each trigger exactly one ``RUL`` code against
the real relational signature.  The load-bearing test is
``test_standard_rules_lint_clean``: every bundled optimization rule is
statically proven type-preserving.
"""

import json

import pytest

from repro.api import connect
from repro.core.patterns import PApp, PVar
from repro.core.terms import Apply, Fun, Literal, Var
from repro.errors import CatalogError, LintError
from repro.lint import (
    CODES,
    Diagnostic,
    LintReport,
    database_catalogs,
    lint_database,
    lint_rules,
    lint_spec,
    scan_suppressions,
)
from repro.optimizer.conditions import CatalogCondition, TypeCondition
from repro.optimizer.engine import Optimizer, OptimizerStep
from repro.optimizer.rules import RewriteRule, rule_vars
from repro.optimizer.termmatch import RuleVar, TypeVar

BAD_SPEC = """\
kinds IDENT, DATA, TUPLE, REL, REP, GHOST

type constructors
    -> IDENT                        ident
    -> DATA                         int, bool
    (ident x DATA)+ -> TUPLE        tuple
    TUPLE -> REL                    rel
    TUPLE -> REP                    srel
    TUPLE -> REP                    relrep

subtypes
    srel(tuple) < relrep(tuple)
    relrep(tuple) < srel(tuple)

operators
    forall rel: rel(tuple) in REL.
        rel x (tuple -> bool) -> rel   select    syntax _ #[ _ ]
        rel x (tuple -> bool) -> rel   select    syntax _ #[ _ ]
    forall g in GHOST.
        g -> g                         ghost
    forall rel: nope(tuple) in REL.
        rel -> rel                     badpat
    forall rel: rel(tuple) in REL.
        rel x rel -> rel               pair      syntax _ #
        rel -> rel                     shadow    syntax _ #
        rel -> bool                    shadow    syntax _ #
        rel x tuple ~> bool            badinsert
        rel -> rel                     twosyntax  syntax _ #
        rel x rel -> rel               twosyntax  syntax _ # _
"""

REP_SPEC = """\
kinds IDENT, DATA, TUPLE, STREAM, REP, ORPHK

type constructors
    -> IDENT  ident
    -> DATA   int, bool
    (ident x DATA)+ -> TUPLE  tuple
    TUPLE -> STREAM  stream
    TUPLE -> REP  usedrep
    TUPLE -> ORPHK  orphanrep

operators
    forall r: usedrep(tuple) in REP.
        r -> stream(tuple)  feed  syntax _ #
"""


def _line_of(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    raise AssertionError(f"{needle!r} not in fixture")


def _by_code(report: LintReport) -> dict:
    out = {}
    for d in report:
        out.setdefault(d.code, []).append(d)
    return out


class TestSpecPass:
    def test_bad_spec_fires_every_code(self):
        report = lint_spec(BAD_SPEC, source="bad.sos")
        codes = {d.code for d in report}
        assert codes == {
            "SOS001", "SOS002", "SOS003", "SOS004", "SOS005",
            "SOS006", "SOS007", "SOS009", "SOS010",
        }
        assert not report.ok

    def test_spans_point_at_declarations(self):
        report = lint_spec(BAD_SPEC, source="bad.sos")
        found = _by_code(report)
        # The duplicate is the *second* select spec.
        dup_line = [
            i for i, line in enumerate(BAD_SPEC.splitlines(), start=1)
            if "select" in line
        ][-1]
        assert found["SOS002"][0].span == (dup_line, 9)
        assert found["SOS001"][0].span == (_line_of(BAD_SPEC, "ghost"), 9)
        assert found["SOS004"][0].span == (_line_of(BAD_SPEC, "badpat"), 9)
        assert found["SOS006"][0].span == (_line_of(BAD_SPEC, "pair"), 9)
        # The cycle is reported on the edge that closes it.
        assert found["SOS007"][0].line == _line_of(BAD_SPEC, "relrep(tuple) <")
        assert found["SOS009"][0].span == (_line_of(BAD_SPEC, "badinsert"), 9)

    def test_subjects_name_the_operator(self):
        report = lint_spec(BAD_SPEC, source="bad.sos")
        found = _by_code(report)
        assert found["SOS002"][0].subject == "select"
        assert found["SOS003"][0].subject == "shadow"
        assert found["SOS005"][0].subject == "twosyntax"
        assert found["SOS009"][0].subject == "badinsert"

    def test_parse_failure_is_sos000_with_span(self):
        report = lint_spec(
            "kinds A\n\ntype constructors\n    nonsense -> A  x",
            source="broken.sos",
        )
        (diag,) = list(report)
        assert diag.code == "SOS000"
        assert diag.severity == "error"
        assert diag.span == (4, 5)
        assert not report.ok

    def test_unreachable_rep_constructor(self):
        report = lint_spec(REP_SPEC, source="rep.sos", level="rep")
        subjects = {d.subject for d in report if d.code == "SOS008"}
        assert "orphanrep" in subjects
        assert "usedrep" not in subjects
        (orphan,) = [
            d for d in report
            if d.code == "SOS008" and d.subject == "orphanrep"
        ]
        assert orphan.line == _line_of(REP_SPEC, "orphanrep")

    def test_subtype_path_makes_rep_reachable(self):
        linked = REP_SPEC.replace(
            "operators",
            "subtypes\n    orphanrep(tuple) < usedrep(tuple)\n\noperators",
        )
        report = lint_spec(linked, source="rep.sos", level="rep")
        subjects = {d.subject for d in report if d.code == "SOS008"}
        assert "orphanrep" not in subjects

    def test_text_rendering(self):
        report = lint_spec(BAD_SPEC, source="bad.sos")
        text = report.render_text()
        assert "bad.sos:" in text
        assert "error: SOS002 [select]:" in text
        assert "error(s)" in text

    def test_json_rendering(self):
        report = lint_spec(BAD_SPEC, source="bad.sos")
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["errors"] == len(report.errors)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "SOS007" in codes
        sos2 = next(
            d for d in payload["diagnostics"] if d["code"] == "SOS002"
        )
        assert sos2["line"] is not None and sos2["column"] == 9

    def test_bundled_models_are_clean(self):
        from repro.models.complex_objects import complex_object_model
        from repro.models.graph import graph_model
        from repro.models.nested import nested_relational_model
        from repro.models.relational import relational_model

        from repro.lint import lint_signature

        for factory in (
            relational_model,
            nested_relational_model,
            complex_object_model,
            graph_model,
        ):
            sos = factory()[0]
            report = lint_signature(sos, source=factory.__name__)
            assert len(report) == 0, report.render_text()


REP1 = RuleVar("rep1", type_pattern=PApp("srel", (PVar("tuple1"),)))
REL1 = RuleVar("rel1", type_pattern=PApp("rel", (PVar("tuple1"),)))


@pytest.fixture()
def db(system):
    return system.database


def _codes_for(rules, db):
    report = lint_rules(
        rules, db.sos, catalogs=database_catalogs(db), source="<test>"
    )
    return report, {d.code for d in report}


class TestRulePass:
    def test_rul001_unbound_rhs_variable(self, db):
        rule = RewriteRule(
            "unbound_rhs",
            rule_vars(REP1, RuleVar("other")),
            Apply("feed", (Var("rep1"),)),
            Var("other"),
        )
        report, codes = _codes_for([rule], db)
        assert codes == {"RUL001"}
        assert "other" in report.errors[0].message

    def test_rul002_unbound_condition_variable(self, db):
        rule = RewriteRule(
            "unbound_cond",
            rule_vars(REP1),
            Apply("feed", (Var("rep1"),)),
            Var("rep1"),
            (TypeCondition("ghost", PApp("relrep", (PVar("t"),))),),
        )
        _, codes = _codes_for([rule], db)
        assert codes == {"RUL002"}

    def test_rul003_dead_rule(self, db):
        rule = RewriteRule(
            "dead",
            rule_vars(REL1),
            Apply("no_such_op", (Var("rel1"),)),
            Var("rel1"),
        )
        _, codes = _codes_for([rule], db)
        # A dead rule is only reported dead, not additionally untypeable.
        assert codes == {"RUL003"}

    def test_rul004_type_changing_rewrite(self, db):
        """select(rel, true) => count(feed(rep)) drops a relation to an
        int — the symbolic check catches it without running a query."""
        rule = RewriteRule(
            "drop_to_count",
            rule_vars(REL1),
            Apply(
                "select",
                (Var("rel1"), Fun((("t1", TypeVar("tuple1")),), Literal(True))),
            ),
            Apply("count", (Apply("feed", (Var("rep1"),)),)),
            (
                CatalogCondition("rep", ("rel1", "rep1")),
                TypeCondition(
                    "rep1", PApp("relrep", (PVar("tuple1"),)), subtype_ok=True
                ),
            ),
        )
        report, codes = _codes_for([rule], db)
        assert codes == {"RUL004"}
        assert "rel" in report.errors[0].message
        assert "int" in report.errors[0].message

    def test_rul005_unknown_catalog(self, db):
        rule = RewriteRule(
            "nocat",
            rule_vars(REP1),
            Apply("feed", (Var("rep1"),)),
            Var("rep1"),
            (CatalogCondition("mystery", ("rep1", "r")),),
        )
        report, codes = _codes_for([rule], db)
        assert codes == {"RUL005"}
        assert report.ok  # warning, not error

    def test_rul006_direct_loop(self, db):
        forward = RewriteRule(
            "loop_a", rule_vars(REP1), Apply("feed", (Var("rep1"),)), Var("rep1")
        )
        backward = RewriteRule(
            "loop_b", rule_vars(REP1), Var("rep1"), Apply("feed", (Var("rep1"),))
        )
        report, codes = _codes_for([forward, backward], db)
        assert codes == {"RUL006"}
        assert "loop_a" in report.warnings[0].message
        assert "loop_b" in report.warnings[0].message

    def test_rul008_lhs_fails_symbolic_typecheck(self, db):
        rule = RewriteRule(
            "bad_lhs",
            rule_vars(REL1),
            Apply("count", (Var("rel1"),)),  # count consumes streams
            Literal(0),
        )
        _, codes = _codes_for([rule], db)
        assert codes == {"RUL008"}

    def test_representation_change_is_type_preserving(self, db):
        """rel(t) => srel(t) keeps the content schema; no RUL004."""
        rule = RewriteRule(
            "to_rep",
            rule_vars(REL1),
            Apply("feed", (Var("rep1"),)),
            Var("rep1"),
            (
                CatalogCondition("rep", ("rel1", "rep1")),
                TypeCondition(
                    "rep1", PApp("relrep", (PVar("tuple1"),)), subtype_ok=True
                ),
            ),
        )
        report, _ = _codes_for([rule], db)
        assert len(report) == 0, report.render_text()

    def test_standard_rules_lint_clean(self, system):
        """Every bundled optimization rule is statically proven
        type-preserving (and binds every variable it uses)."""
        report = lint_database(
            system.database, system.optimizer, source="standard"
        )
        assert len(report) == 0, report.render_text()


class TestSuppressions:
    def test_scan_trailing_and_standalone(self):
        text = (
            "line one\n"
            "bad decl  -- lint: disable=SOS002\n"
            "-- lint: disable=SOS009,SOS010\n"
            "the next line\n"
        )
        file_wide, by_line = scan_suppressions(text)
        assert file_wide == set()
        assert by_line[2] == {"SOS002"}
        # A standalone comment suppresses its own line and the next.
        assert by_line[3] == by_line[4] == {"SOS009", "SOS010"}

    def test_scan_file_wide(self):
        file_wide, by_line = scan_suppressions("-- lint: disable-file=SOS010\n")
        assert file_wide == {"SOS010"}
        assert 1 not in by_line

    def test_inline_suppression_drops_diagnostic(self):
        suppressed = BAD_SPEC.replace(
            "rel x tuple ~> bool            badinsert",
            "rel x tuple ~> bool            badinsert"
            "  -- lint: disable=SOS009",
        )
        report = lint_spec(suppressed, source="bad.sos")
        assert "SOS009" not in {d.code for d in report}
        assert "SOS002" in {d.code for d in report}  # others unaffected

    def test_file_wide_suppression(self):
        suppressed = "-- lint: disable-file=SOS010\n" + BAD_SPEC
        report = lint_spec(suppressed, source="bad.sos")
        assert "SOS010" not in {d.code for d in report}

    def test_report_suppress_by_code(self):
        report = LintReport(
            [Diagnostic("SOS010", "x"), Diagnostic("SOS002", "y")]
        )
        kept = report.suppress(codes=["SOS010"])
        assert [d.code for d in kept] == ["SOS002"]


class TestDiagnostics:
    def test_every_code_has_severity_and_summary(self):
        for code, (severity, summary) in CODES.items():
            assert severity in ("error", "warn", "info")
            assert summary

    def test_default_severity_from_table(self):
        assert Diagnostic("RUL004", "m").severity == "error"
        assert Diagnostic("RUL006", "m").severity == "warn"
        assert Diagnostic("SOS010", "m").severity == "info"

    def test_render_shape(self):
        diag = Diagnostic(
            "SOS002", "dup", source="f.sos", subject="op", line=3, column=9
        )
        assert diag.render() == "f.sos:3:9: error: SOS002 [op]: dup"

    def test_sorted_puts_errors_first(self):
        report = LintReport(
            [Diagnostic("SOS010", "i"), Diagnostic("SOS002", "e")]
        )
        assert [d.code for d in report.sorted()] == ["SOS002", "SOS010"]


def _broken_optimizer():
    rule = RewriteRule(
        "drop_type",
        rule_vars(REL1),
        Apply(
            "select",
            (Var("rel1"), Fun((("t1", TypeVar("tuple1")),), Literal(True))),
        ),
        Apply("count", (Apply("feed", (Var("rep1"),)),)),
        (
            CatalogCondition("rep", ("rel1", "rep1")),
            TypeCondition(
                "rep1", PApp("relrep", (PVar("tuple1"),)), subtype_ok=True
            ),
        ),
    )
    return Optimizer([OptimizerStep("broken", [rule])])


class TestSessionIntegration:
    def test_session_lint_clean(self):
        report = connect().lint()
        assert len(report) == 0, report.render_text()

    def test_connect_strict_accepts_standard_stack(self):
        session = connect(lint="strict")
        assert session.query("1 + 1").value == 2

    def test_connect_strict_rejects_broken_optimizer(self):
        with pytest.raises(LintError) as exc:
            connect(optimizer=_broken_optimizer(), lint="strict")
        assert "RUL004" in str(exc.value)
        report = exc.value.report
        assert report is not None and not report.ok

    def test_connect_warn_emits_warnings(self):
        with pytest.warns(UserWarning, match="RUL004"):
            connect(optimizer=_broken_optimizer(), lint="warn")

    def test_connect_rejects_bad_lint_mode(self):
        with pytest.raises(CatalogError):
            connect(lint="pedantic")

    def test_model_session_lints_signature_only(self):
        report = connect(model="model").lint()
        assert report.ok
