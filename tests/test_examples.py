"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "spatial_join.py",
        "views_and_updates.py",
        "nested_models.py",
        "define_your_own_model.py",
        "access_paths.py",
    } <= names
