"""Stateful (model-based) testing of the storage structures.

Hypothesis drives random operation sequences against the B-tree and the
LSD-tree, checking after every step that they agree with a trivial
reference implementation and that their structural invariants hold.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.geometry import Point, Rect
from repro.storage import BTree, LSDTree
from repro.storage.io import PageManager

keys = st.integers(min_value=0, max_value=40)
payloads = st.integers(min_value=0, max_value=5)


class BTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BTree(key=lambda t: t[0], order=4, pages=PageManager())
        self.reference: list[tuple] = []

    @rule(key=keys, payload=payloads)
    def insert(self, key, payload):
        item = (key, payload)
        self.tree.insert(item)
        self.reference.append(item)

    @rule(key=keys, payload=payloads)
    def delete(self, key, payload):
        item = (key, payload)
        present = item in self.reference
        assert self.tree.delete(item) == present
        if present:
            self.reference.remove(item)

    @rule(low=keys, high=keys)
    def range_query(self, low, high):
        low, high = min(low, high), max(low, high)
        got = sorted(self.tree.range_search(low, high))
        expected = sorted(t for t in self.reference if low <= t[0] <= high)
        assert got == expected

    @rule()
    def full_scan(self):
        assert sorted(self.tree.scan()) == sorted(self.reference)

    @invariant()
    def structure_is_valid(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.reference)


class LSDTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = LSDTree(key=lambda t: t[1], bucket_capacity=3, pages=PageManager())
        self.reference: list[tuple] = []
        self._next_id = 0

    @rule(x=keys, y=keys, w=payloads, h=payloads)
    def insert(self, x, y, w, h):
        rect = Rect(x, y, x + w + 0.5, y + h + 0.5)
        item = (self._next_id, rect)
        self._next_id += 1
        self.tree.insert(item)
        self.reference.append(item)

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def delete_some(self, index):
        if not self.reference:
            return
        item = self.reference[index % len(self.reference)]
        assert self.tree.delete(item)
        self.reference.remove(item)

    @rule(x=keys, y=keys)
    def point_query(self, x, y):
        p = Point(x + 0.25, y + 0.25)
        got = sorted(t[0] for t in self.tree.point_search(p))
        expected = sorted(i for i, r in self.reference if r.contains_point(p))
        assert got == expected

    @rule(x=keys, y=keys, w=payloads, h=payloads)
    def overlap_query(self, x, y, w, h):
        q = Rect(x, y, x + w + 0.5, y + h + 0.5)
        got = sorted(t[0] for t in self.tree.overlap_search(q))
        expected = sorted(i for i, r in self.reference if r.intersects(q))
        assert got == expected

    @invariant()
    def structure_is_valid(self):
        self.tree.check_invariants()


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

TestLSDTreeStateful = LSDTreeMachine.TestCase
TestLSDTreeStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
