"""LSD-tree unit and property tests (structure of [HeSW89], Section 4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.geometry import Point, Rect
from repro.storage import LSDTree
from repro.storage.io import PageManager

coords = st.floats(min_value=0, max_value=100, allow_nan=False, width=32)


def rect_items(min_size=0, max_size=80):
    def to_item(index_and_coords):
        i, (x, y, w, h) = index_and_coords
        return (i, Rect(x, y, x + abs(w) + 0.1, y + abs(h) + 0.1))

    base = st.tuples(coords, coords, coords, coords)
    return st.lists(base, min_size=min_size, max_size=max_size).map(
        lambda cs: [to_item((i, c)) for i, c in enumerate(cs)]
    )


def fresh(capacity=4):
    return LSDTree(key=lambda t: t[1], bucket_capacity=capacity, pages=PageManager())


class TestBasics:
    def test_capacity_minimum(self):
        with pytest.raises(StorageError):
            LSDTree(key=lambda t: t, bucket_capacity=1)

    def test_key_must_be_rect(self):
        tree = LSDTree(key=lambda t: t, bucket_capacity=4, pages=PageManager())
        with pytest.raises(StorageError):
            tree.insert("not a rect")

    def test_insert_and_scan(self):
        tree = fresh()
        for i in range(20):
            tree.insert((i, Rect(i, i, i + 1, i + 1)))
        assert sorted(t[0] for t in tree.scan()) == list(range(20))
        tree.check_invariants()

    def test_point_search_small(self):
        tree = fresh()
        tree.insert(("a", Rect(0, 0, 10, 10)))
        tree.insert(("b", Rect(20, 20, 30, 30)))
        assert [t[0] for t in tree.point_search(Point(5, 5))] == ["a"]
        assert list(tree.point_search(Point(15, 15))) == []

    def test_overlap_search_small(self):
        tree = fresh()
        tree.insert(("a", Rect(0, 0, 10, 10)))
        tree.insert(("b", Rect(20, 20, 30, 30)))
        got = sorted(t[0] for t in tree.overlap_search(Rect(5, 5, 25, 25)))
        assert got == ["a", "b"]

    def test_duplicate_rectangles(self):
        tree = fresh(capacity=2)
        for i in range(10):
            tree.insert((i, Rect(1, 1, 2, 2)))
        assert len(tree) == 10
        assert sorted(t[0] for t in tree.point_search(Point(1.5, 1.5))) == list(range(10))

    def test_delete(self):
        tree = fresh()
        items = [(i, Rect(i, 0, i + 5, 5)) for i in range(20)]
        for t in items:
            tree.insert(t)
        for t in items[:10]:
            assert tree.delete(t)
        assert not tree.delete(items[0])
        assert len(tree) == 10
        tree.check_invariants()


class TestAgainstBruteForce:
    @given(rect_items(), st.tuples(coords, coords))
    @settings(max_examples=50, deadline=None)
    def test_point_search_complete_and_sound(self, items, xy):
        tree = fresh(capacity=4)
        for t in items:
            tree.insert(t)
        p = Point(*xy)
        got = sorted(t[0] for t in tree.point_search(p))
        expected = sorted(i for i, r in items if r.contains_point(p))
        assert got == expected

    @given(rect_items(), st.tuples(coords, coords, coords, coords))
    @settings(max_examples=50, deadline=None)
    def test_overlap_search_complete_and_sound(self, items, box):
        tree = fresh(capacity=4)
        for t in items:
            tree.insert(t)
        x, y, w, h = box
        query = Rect(x, y, x + abs(w) + 0.1, y + abs(h) + 0.1)
        got = sorted(t[0] for t in tree.overlap_search(query))
        expected = sorted(i for i, r in items if r.intersects(query))
        assert got == expected

    @given(rect_items(min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_inserts(self, items):
        tree = fresh(capacity=3)
        for t in items:
            tree.insert(t)
        tree.check_invariants()
        assert len(tree) == len(items)


class TestIOAccounting:
    def test_point_search_reads_fewer_buckets_than_scan(self):
        pages = PageManager()
        tree = LSDTree(key=lambda t: t[1], bucket_capacity=8, pages=pages)
        rng = random.Random(13)
        for i in range(3000):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            tree.insert((i, Rect(x, y, x + 5, y + 5)))
        with pages.measure() as scan:
            list(tree.scan())
        with pages.measure() as search:
            list(tree.point_search(Point(500, 500)))
        assert search.delta.reads < scan.delta.reads / 5
