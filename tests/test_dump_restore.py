"""Dump/restore: persistence through the language itself."""

import pytest

from repro.system import dump_program, build_relational_system, restore_program


class TestDumpRestore:
    def test_roundtrip_rebuilds_everything(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)

        # named types
        assert fresh.database.aliases.keys() == loaded_system.database.aliases.keys()
        # objects
        assert set(fresh.database.objects) == set(loaded_system.database.objects)
        # structure contents
        old_bt = loaded_system.database.objects["cities_rep"].value
        new_bt = fresh.database.objects["cities_rep"].value
        assert sorted(t.attr("cname") for t in old_bt.scan()) == sorted(
            t.attr("cname") for t in new_bt.scan()
        )
        # catalog rows
        assert (
            fresh.database.objects["rep"].value.rows
            == loaded_system.database.objects["rep"].value.rows
        )

    def test_restored_system_answers_queries_identically(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        for query in (
            "query cities select[pop >= 5000]",
            "query cities states join[center inside region]",
        ):
            a = loaded_system.run_one(query)
            b = fresh.run_one(query)
            ka = sorted(t.attr("cname") for t in a.value)
            kb = sorted(t.attr("cname") for t in b.value)
            assert ka == kb

    def test_polygons_round_trip(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        old_lsd = loaded_system.database.objects["states_rep"].value
        new_lsd = fresh.database.objects["states_rep"].value
        old_regions = sorted(str(t.attr("region")) for t in old_lsd.scan())
        new_regions = sorted(str(t.attr("region")) for t in new_lsd.scan())
        assert old_regions == new_regions

    def test_dump_is_readable_program_text(self, loaded_system):
        text = dump_program(loaded_system.database)
        assert text.startswith("-- database dump")
        assert "type city = tuple(<(cname, string)" in text
        assert "create cities : rel(city)" in text
        assert "update rep := insert(rep, cities, cities_rep)" in text
        assert 'mktuple[<(cname, "c0")' in text

    def test_scalar_and_tuple_objects(self, system):
        system.run(
            """
type t = tuple(<(a, int), (flag, bool)>)
create one : t
"""
        )
        from repro.core.algebra import TupleValue

        system.database.set_value(
            "one", TupleValue(system.database.aliases["t"], (7, True))
        )
        text = dump_program(system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        restored = fresh.database.objects["one"].value
        assert restored.attr("a") == 7
        assert restored.attr("flag") is True


class TestDumpProperty:
    def test_random_data_roundtrips(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.lists(
                st.tuples(
                    st.text(
                        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
                    ),
                    st.integers(-10**6, 10**6),
                    st.floats(-100, 100, allow_nan=False),
                    st.booleans(),
                ),
                max_size=15,
            )
        )
        @settings(max_examples=20, deadline=None)
        def check(rows):
            system = build_relational_system()
            system.run(
                """
type row = tuple(<(s, string), (i, int), (r, real), (b, bool)>)
create data : srel(row)
"""
            )
            from repro.models.relational import make_tuple

            srel = system.database.objects["data"].value
            row_t = system.database.aliases["row"]
            for s, i, r, b in rows:
                srel.append(make_tuple(row_t, s=s, i=i, r=r, b=b))
            text = dump_program(system.database)
            fresh = build_relational_system()
            restore_program(fresh, text)
            restored = fresh.database.objects["data"].value
            assert sorted(map(repr, restored.scan())) == sorted(
                map(repr, srel.scan())
            )

        check()


class TestUndumpableValues:
    def test_function_valued_objects_become_notes(self):
        from repro.system import build_model_interpreter

        interp = build_model_interpreter()
        interp.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
create v : (-> rel(t))
update v := fun () r select[a > 0]
"""
        )
        text = dump_program(interp.database)
        assert "-- note: function-valued object v is not dumped" in text

    def test_graph_values_become_notes(self):
        from repro.catalog import Database
        from repro.lang import Interpreter
        from repro.models.graph import graph_model

        sos, algebra = graph_model()
        interp = Interpreter(Database(sos, algebra))
        interp.run(
            """
type n = tuple(<(a, int)>)
create g : graph(n, n)
"""
        )
        text = dump_program(interp.database)
        assert "no program representation" in text


class TestBoolLiterals:
    def test_true_false_in_expressions(self, system):
        assert system.run_one("query true").value is True
        assert system.run_one("query false and true").value is False
        assert system.run_one("query not(false)").value is True

    def test_bool_in_mktuple(self, system):
        r = system.run_one("query mktuple[<(ok, true)>]")
        assert r.value.attr("ok") is True


class TestAllStructuresRoundTrip:
    """One database holding every storage structure — BTree, LSDTree, SRel,
    TidRelation and a SecondaryIndex — plus statistics, dumped and restored
    twice: the round trip is exact and re-restoring is idempotent (the
    second restore's ``create`` statements are skipped, not errors)."""

    @pytest.fixture()
    def full_system(self, system):
        system.run(
            """
type item = tuple(<(sku, string), (price, int)>)
type spot = tuple(<(tag, string), (region, rect)>)
create bt : btree(item, price, int)
create lsd : lsdtree(spot, fun (s: spot) s region)
create sr : srel(item)
create heap : tidrel(item)
create idx : sindex(item, price, int)
create items : rel(item)
update rep := insert(rep, items, bt)
"""
        )
        for i in range(12):
            t = f'mktuple[<(sku, "sku{i:03d}"), (price, {i * 5})>]'
            system.run_one(f"update bt := insert(bt, {t})")
            system.run_one(f"update heap := insert(heap, {t})")
        for i in range(4):
            system.run_one(
                f'update sr := insert(sr, mktuple[<(sku, "s{i}"), (price, {i})>])'
            )
            system.run_one(
                f"update lsd := insert(lsd, mktuple[<(tag, \"t{i}\"), "
                f"(region, box({i}.0, 0.0, {i + 1}.0, 1.0))>])"
            )
        system.run_one("update idx := build_index(heap, price)")
        system.run_one("analyze bt, heap, sr")
        return system

    def test_roundtrip_is_exact_over_every_structure(self, full_system):
        text = dump_program(full_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        assert dump_program(fresh.database) == text
        # the rebuilt secondary index answers point lookups over the
        # rebuilt heap (it indexes the restored structure, not a copy)
        r = fresh.run_one("query idx sindex_exact[25]")
        assert [t.attr("sku") for t in r.value] == ["sku005"]
        # statistics were recreated by the dump's analyze statement
        assert set(fresh.database.stats.entries) >= {"bt", "heap", "sr"}

    def test_restore_is_idempotent(self, full_system):
        text = dump_program(full_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        restore_program(fresh, text)  # replays data, skips existing creates
        # inserts replayed twice double the heap, but nothing errors and
        # the catalog stays consistent
        assert set(fresh.database.objects) == set(full_system.database.objects)

    def test_dump_is_deterministic(self, full_system):
        assert dump_program(full_system.database) == dump_program(
            full_system.database
        )

    def test_rep_catalog_create_round_trips(self, full_system):
        text = dump_program(full_system.database)
        assert "create rep : " in text
        fresh = build_relational_system()  # pre-creates rep itself
        restore_program(fresh, text)
        assert (
            fresh.database.objects["rep"].value.rows
            == full_system.database.objects["rep"].value.rows
        )
