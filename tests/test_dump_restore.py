"""Dump/restore: persistence through the language itself."""

import pytest

from repro.system import dump_program, build_relational_system, restore_program


class TestDumpRestore:
    def test_roundtrip_rebuilds_everything(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)

        # named types
        assert fresh.database.aliases.keys() == loaded_system.database.aliases.keys()
        # objects
        assert set(fresh.database.objects) == set(loaded_system.database.objects)
        # structure contents
        old_bt = loaded_system.database.objects["cities_rep"].value
        new_bt = fresh.database.objects["cities_rep"].value
        assert sorted(t.attr("cname") for t in old_bt.scan()) == sorted(
            t.attr("cname") for t in new_bt.scan()
        )
        # catalog rows
        assert (
            fresh.database.objects["rep"].value.rows
            == loaded_system.database.objects["rep"].value.rows
        )

    def test_restored_system_answers_queries_identically(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        for query in (
            "query cities select[pop >= 5000]",
            "query cities states join[center inside region]",
        ):
            a = loaded_system.run_one(query)
            b = fresh.run_one(query)
            ka = sorted(t.attr("cname") for t in a.value)
            kb = sorted(t.attr("cname") for t in b.value)
            assert ka == kb

    def test_polygons_round_trip(self, loaded_system):
        text = dump_program(loaded_system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        old_lsd = loaded_system.database.objects["states_rep"].value
        new_lsd = fresh.database.objects["states_rep"].value
        old_regions = sorted(str(t.attr("region")) for t in old_lsd.scan())
        new_regions = sorted(str(t.attr("region")) for t in new_lsd.scan())
        assert old_regions == new_regions

    def test_dump_is_readable_program_text(self, loaded_system):
        text = dump_program(loaded_system.database)
        assert text.startswith("-- database dump")
        assert "type city = tuple(<(cname, string)" in text
        assert "create cities : rel(city)" in text
        assert "update rep := insert(rep, cities, cities_rep)" in text
        assert 'mktuple[<(cname, "c0")' in text

    def test_scalar_and_tuple_objects(self, system):
        system.run(
            """
type t = tuple(<(a, int), (flag, bool)>)
create one : t
"""
        )
        from repro.core.algebra import TupleValue

        system.database.set_value(
            "one", TupleValue(system.database.aliases["t"], (7, True))
        )
        text = dump_program(system.database)
        fresh = build_relational_system()
        restore_program(fresh, text)
        restored = fresh.database.objects["one"].value
        assert restored.attr("a") == 7
        assert restored.attr("flag") is True


class TestDumpProperty:
    def test_random_data_roundtrips(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.lists(
                st.tuples(
                    st.text(
                        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
                    ),
                    st.integers(-10**6, 10**6),
                    st.floats(-100, 100, allow_nan=False),
                    st.booleans(),
                ),
                max_size=15,
            )
        )
        @settings(max_examples=20, deadline=None)
        def check(rows):
            system = build_relational_system()
            system.run(
                """
type row = tuple(<(s, string), (i, int), (r, real), (b, bool)>)
create data : srel(row)
"""
            )
            from repro.models.relational import make_tuple

            srel = system.database.objects["data"].value
            row_t = system.database.aliases["row"]
            for s, i, r, b in rows:
                srel.append(make_tuple(row_t, s=s, i=i, r=r, b=b))
            text = dump_program(system.database)
            fresh = build_relational_system()
            restore_program(fresh, text)
            restored = fresh.database.objects["data"].value
            assert sorted(map(repr, restored.scan())) == sorted(
                map(repr, srel.scan())
            )

        check()


class TestUndumpableValues:
    def test_function_valued_objects_become_notes(self):
        from repro.system import build_model_interpreter

        interp = build_model_interpreter()
        interp.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
create v : (-> rel(t))
update v := fun () r select[a > 0]
"""
        )
        text = dump_program(interp.database)
        assert "-- note: function-valued object v is not dumped" in text

    def test_graph_values_become_notes(self):
        from repro.catalog import Database
        from repro.lang import Interpreter
        from repro.models.graph import graph_model

        sos, algebra = graph_model()
        interp = Interpreter(Database(sos, algebra))
        interp.run(
            """
type n = tuple(<(a, int)>)
create g : graph(n, n)
"""
        )
        text = dump_program(interp.database)
        assert "no program representation" in text


class TestBoolLiterals:
    def test_true_false_in_expressions(self, system):
        assert system.run_one("query true").value is True
        assert system.run_one("query false and true").value is False
        assert system.run_one("query not(false)").value is True

    def test_bool_in_mktuple(self, system):
        r = system.run_one("query mktuple[<(ok, true)>]")
        assert r.value.attr("ok") is True
