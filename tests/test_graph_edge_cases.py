"""Graph model edge cases: multi-edges, self-loops, replacement."""

import pytest

from repro.catalog import Database
from repro.lang import Interpreter
from repro.models.graph import graph_model


@pytest.fixture()
def interp():
    sos, algebra = graph_model()
    interp = Interpreter(Database(sos, algebra))
    interp.run(
        """
type n = tuple(<(label, string)>)
type e = tuple(<(w, int)>)
create g : graph(n, e)
update g := add_node(g, 1, mktuple[<(label, "a")>])
update g := add_node(g, 2, mktuple[<(label, "b")>])
"""
    )
    return interp


class TestEdgeCases:
    def test_parallel_edges_allowed(self, interp):
        interp.run_one("update g := add_edge(g, 1, 2, mktuple[<(w, 1)>])")
        interp.run_one("update g := add_edge(g, 1, 2, mktuple[<(w, 2)>])")
        r = interp.run_one("query g edges")
        assert sorted(t.attr("w") for t in r.value.rows) == [1, 2]
        assert interp.run_one("query g degree[1]").value == 2

    def test_self_loop(self, interp):
        interp.run_one("update g := add_edge(g, 1, 1, mktuple[<(w, 0)>])")
        r = interp.run_one("query g succ[1]")
        assert [t.attr("label") for t in r.value.rows] == ["a"]
        reach = interp.run_one("query g reachable[1]")
        assert len(reach.value.rows) == 1

    def test_node_replacement_keeps_edges(self, interp):
        interp.run_one("update g := add_edge(g, 1, 2, mktuple[<(w, 1)>])")
        interp.run_one('update g := add_node(g, 1, mktuple[<(label, "a2")>])')
        r = interp.run_one("query g succ[1]")
        assert [t.attr("label") for t in r.value.rows] == ["b"]
        nodes = interp.run_one("query g nodes")
        assert sorted(t.attr("label") for t in nodes.value.rows) == ["a2", "b"]

    def test_shortest_path_to_self(self, interp):
        r = interp.run_one("query g shortest_path[1, 1]")
        assert [t.attr("label") for t in r.value.rows] == ["a"]

    def test_unknown_node_queries_raise(self, interp):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            interp.run_one("query g succ[99]")
        with pytest.raises(ExecutionError):
            interp.run_one("query g degree[99]")
