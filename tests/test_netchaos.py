"""Network fault tolerance: the chaos-proxy fault matrix, exactly-once
commits through the idempotency journal, graceful drain, admission
control, statement timeouts, and the client retry machinery.

The matrix drives every chaos injection site against every operation kind
(auto-commit statement, explicit commit, explicit rollback) through a
:class:`~repro.testing.netchaos.ChaosProxy`, asserting the acceptance
contract: the client transparently recovers (or surfaces a typed
retryable error), committed state equals exactly the acked commits, and
aborted transactions leave zero WAL residue — including after a full
recovery of the data directory.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import connect
from repro.errors import (
    CatalogError,
    ConflictError,
    ProtocolError,
    ServerBusyError,
    StatementTimeoutError,
    is_retryable,
)
from repro.server import start_server
from repro.server.client import (
    NetworkSession,
    RetryPolicy,
    parse_dsn,
    parse_dsn_options,
)
from repro.testing import CHAOS_SITES, ChaosPlan, ChaosProxy, inject

SCHEMA = """
type city = tuple(<(cname, string), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""

INSERT = 'update cities := insert(cities, mktuple[<(cname, "{name}"), (pop, {pop})>])'

RETRY_OPTS = "retries=5&backoff_ms=40&backoff_cap_ms=200"


def count(session):
    return session.query("cities_rep feed count").value


def wal_bytes(data_dir):
    return sum(
        os.path.getsize(os.path.join(data_dir, name))
        for name in os.listdir(data_dir)
        if name.startswith("wal")
    )


# ---------------------------------------------------------------------------
# The chaos matrix
# ---------------------------------------------------------------------------


#: ``(operation, request ordinal the fault should hit)`` — through the
#: proxy a statement is request 1; in a transaction the target operation
#: is request 3 (begin, statement, then commit/rollback).
MATRIX_OPERATIONS = (("statement", 1), ("commit", 3), ("rollback", 3))


@pytest.mark.parametrize("site", CHAOS_SITES)
@pytest.mark.parametrize("operation,at", MATRIX_OPERATIONS)
def test_fault_matrix(tmp_path, site, operation, at):
    with start_server(data_dir=str(tmp_path)) as handle:
        setup = connect(handle.address)  # schema goes around the proxy
        setup.run(SCHEMA)
        baseline_wal = wal_bytes(str(tmp_path))
        plan = ChaosPlan(site, at=at)
        with ChaosProxy.for_dsn(handle.address, plan) as proxy:
            db = connect(proxy.dsn(RETRY_OPTS))
            if operation == "statement":
                db.run_one(INSERT.format(name="aa", pop=1))
                expected = 1
            elif operation == "commit":
                db.begin()
                db.run_one(INSERT.format(name="aa", pop=1))
                db.commit()
                expected = 1
            else:  # rollback
                db.begin()
                db.run_one(INSERT.format(name="aa", pop=1))
                db.rollback()
                expected = 0
            assert plan.triggered, f"{site} never fired for {operation}"
            # Committed state equals exactly the acked commits — never a
            # double apply, never a lost acked commit.
            assert count(db) == expected
            assert count(setup) == expected
        if expected == 0:
            # An aborted transaction leaves zero WAL residue.
            assert wal_bytes(str(tmp_path)) == baseline_wal
    # ... and recovery of the data directory agrees.
    local = connect(f"file:{tmp_path}")
    try:
        assert count(local) == expected
    finally:
        local.close()


def test_proxy_passthrough_without_plan(tmp_path):
    with start_server(data_dir=str(tmp_path)) as handle:
        with ChaosProxy.for_dsn(handle.address) as proxy:
            db = connect(proxy.address)
            db.run(SCHEMA)
            db.run_one(INSERT.format(name="aa", pop=1))
            assert count(db) == 1
            assert proxy.connections == 1


def test_chaos_plan_rejects_unknown_site():
    with pytest.raises(ValueError):
        ChaosPlan("drop.everything")


# ---------------------------------------------------------------------------
# Exactly-once commits: the idempotency journal
# ---------------------------------------------------------------------------


class TestExactlyOnce:
    def test_retried_statement_after_dropped_ack_hits_journal(self, tmp_path):
        """The satellite case: the commit is fsynced (the client is parked
        on the group-commit future) and the acknowledgement is dropped —
        the retried request must observe a journal hit, not re-apply."""
        with start_server(data_dir=str(tmp_path)) as handle:
            setup = connect(handle.address)
            setup.run(SCHEMA)
            db = connect(handle.address + "?retries=3&backoff_ms=20")
            hits_before = handle.server.engine.journal.hits
            with inject("server.ack"):
                result = db.run_one(INSERT.format(name="aa", pop=1))
            assert result is not None
            assert handle.server.engine.journal.hits == hits_before + 1
            assert count(setup) == 1  # applied exactly once

    def test_retried_explicit_commit_resolves_via_token(self, tmp_path):
        with start_server(data_dir=str(tmp_path)) as handle:
            setup = connect(handle.address)
            setup.run(SCHEMA)
            db = connect(handle.address + "?retries=3&backoff_ms=20")
            db.begin()
            db.run_one(INSERT.format(name="aa", pop=1))
            with inject("server.ack"):
                db.commit()
            assert count(setup) == 1
            # The session stays usable after the recovery dance.
            db.run_one(INSERT.format(name="bb", pop=2))
            assert count(db) == 2

    def test_journal_survives_restart(self, tmp_path):
        """Committed tokens ride the WAL commit records: a retry that
        straddles a server restart still replays instead of re-applying."""
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            db.run(SCHEMA)
            token = "tok-restart-probe"
            db._client.request(
                "run_one", source=INSERT.format(name="aa", pop=1), token=token
            )
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            frame = db._client.request(
                "run_one", source=INSERT.format(name="aa", pop=1), token=token
            )
            assert frame.get("journal_hit") is True
            assert count(db) == 1

    def test_conflict_outcome_is_replayed(self, tmp_path):
        """A token whose transaction lost the race replays the conflict."""
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            db.run(SCHEMA)
            first = connect(handle.address)
            second = connect(handle.address)
            first.begin()
            second.begin()
            first.run_one(INSERT.format(name="aa", pop=1))
            second.run_one(INSERT.format(name="bb", pop=2))
            first.commit()
            token = "tok-conflict-probe"
            with pytest.raises(ConflictError):
                second._client.request("commit", token=token)
            with pytest.raises(ConflictError) as info:
                second._client.request("commit", token=token)
            assert "replayed" in str(info.value)
            status = db._client.request("txn_status", token=token)
            assert status["state"] == "conflict"

    def test_txn_status_unknown_for_fresh_token(self, tmp_path):
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            status = db._client.request("txn_status", token="never-seen")
            assert status["state"] == "unknown"


# ---------------------------------------------------------------------------
# Graceful drain and admission control
# ---------------------------------------------------------------------------


class TestDrainAndAdmission:
    def test_drain_finishes_acked_work_and_rejects_new(self, tmp_path):
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            db.run(SCHEMA)
            db.run_one(INSERT.format(name="aa", pop=1))
            idler = connect(handle.address)
            idler.begin()
            idler.run_one(INSERT.format(name="bb", pop=2))
            residue_before = wal_bytes(str(tmp_path))
            elapsed = handle.drain()
            assert elapsed >= 0.0
            # The idle transaction was rolled back, with zero WAL residue.
            assert handle.server.engine.open_transactions == 0
            assert wal_bytes(str(tmp_path)) == residue_before
            # New connections are refused with a *retryable* error.
            late = connect(handle.address)
            with pytest.raises(ServerBusyError) as info:
                late.ping()
            assert is_retryable(info.value)
            # New requests on existing connections are refused too.
            with pytest.raises(ServerBusyError):
                db.run_one(INSERT.format(name="cc", pop=3))
        # Every acked commit survived the drain and is recovered.
        local = connect(f"file:{tmp_path}")
        try:
            assert count(local) == 1
        finally:
            local.close()

    def test_max_connections_sheds_load(self):
        with start_server(max_connections=1) as handle:
            keeper = connect(handle.address)
            assert keeper.ping()["server"] == "repro"
            refused = connect(handle.address)
            with pytest.raises(ServerBusyError) as info:
                refused.ping()
            assert is_retryable(info.value)
            assert handle.server.rejected_connections >= 1
            # Freeing the slot lets a retrying client in.
            keeper.disconnect()
            patient = connect(handle.address + "?retries=8&backoff_ms=40")
            assert patient.ping()["server"] == "repro"

    def test_rejected_connection_counts_in_telemetry(self):
        with start_server(max_connections=1) as handle:
            keeper = connect(handle.address)
            keeper.ping()
            with pytest.raises(ServerBusyError):
                connect(handle.address).ping()
            snap = handle.server.telemetry_snapshot()
            assert snap["counters"]["server.rejected_connections"] >= 1
            assert snap["server"]["rejected_connections"] >= 1


# ---------------------------------------------------------------------------
# Statement timeouts
# ---------------------------------------------------------------------------


class TestStatementTimeout:
    def test_runaway_statement_is_cancelled(self):
        with start_server(statement_timeout_ms=0.001) as handle:
            db = connect(handle.address)
            with pytest.raises(StatementTimeoutError):
                db.run_one("query 1 + 2 * 3")
            snap = handle.server.telemetry_snapshot()
            assert snap["counters"]["server.statement_timeouts"] >= 1

    def test_timeout_error_is_not_retryable(self):
        with start_server(statement_timeout_ms=0.001) as handle:
            db = connect(handle.address + "?retries=5&backoff_ms=10")
            started = time.monotonic()
            with pytest.raises(StatementTimeoutError) as info:
                db.run_one("query 1 + 2 * 3")
            assert not is_retryable(info.value)
            # No retry loop: the error surfaced on the first attempt.
            assert time.monotonic() - started < 2.0

    def test_generous_timeout_does_not_interfere(self, tmp_path):
        with start_server(
            data_dir=str(tmp_path), statement_timeout_ms=60_000
        ) as handle:
            db = connect(handle.address)
            db.run(SCHEMA)
            db.run_one(INSERT.format(name="aa", pop=1))
            assert count(db) == 1


# ---------------------------------------------------------------------------
# Client retry machinery (unit level)
# ---------------------------------------------------------------------------


class _FakeClient:
    address = ("fake", 0)

    def set_timeout(self, timeout):
        pass

    def close(self):
        pass


class _NoReconnect(NetworkSession):
    """A session whose reconnect is a no-op — isolates the retry loops."""

    __slots__ = ("reconnects",)

    def __init__(self, policy):
        super().__init__(_FakeClient(), "repro://fake:0", policy=policy)
        self.reconnects = 0

    def _reconnect(self, *, replay=True):
        self.reconnects += 1


class TestRetryPolicy:
    def test_dsn_options_parse(self):
        host, port, policy = parse_dsn_options(
            "repro://h:7001?retries=3&deadline_ms=5000&backoff_ms=25"
            "&backoff_cap_ms=500&connect_timeout_ms=1500"
        )
        assert (host, port) == ("h", 7001)
        assert policy.retries == 3
        assert policy.deadline_ms == 5000
        assert policy.backoff_ms == 25
        assert policy.backoff_cap_ms == 500
        assert policy.connect_timeout == 1.5

    def test_dsn_defaults_are_no_retry(self):
        _, _, policy = parse_dsn_options("repro://h")
        assert policy == RetryPolicy()
        assert policy.retries == 0

    def test_parse_dsn_ignores_options(self):
        assert parse_dsn("repro://h:7001?retries=3") == ("h", 7001)

    def test_unknown_option_rejected(self):
        with pytest.raises(CatalogError):
            parse_dsn_options("repro://h?bogus=1")

    def test_bad_value_rejected(self):
        with pytest.raises(CatalogError):
            parse_dsn_options("repro://h?retries=many")

    def test_transport_retry_reuses_token(self):
        session = _NoReconnect(RetryPolicy(retries=3, backoff_ms=1))
        tokens = []

        def send(token):
            tokens.append(token)
            if len(tokens) == 1:
                raise ProtocolError("gone")
            return "ok"

        assert session._retry_mutation(send) == "ok"
        assert len(tokens) == 2
        assert tokens[0] == tokens[1]  # the journal dedupes by this token
        assert session.reconnects == 1

    def test_conflict_retry_uses_fresh_token(self):
        session = _NoReconnect(RetryPolicy(retries=3, backoff_ms=1))
        tokens = []

        def send(token):
            tokens.append(token)
            if len(tokens) == 1:
                raise ConflictError("race", names=("x",))
            return "ok"

        assert session._retry_mutation(send) == "ok"
        assert tokens[0] != tokens[1]  # the old token records the conflict

    def test_retries_exhausted_raises_last_error(self):
        session = _NoReconnect(RetryPolicy(retries=2, backoff_ms=1))
        calls = []

        def send(token):
            calls.append(token)
            raise ProtocolError("still gone")

        with pytest.raises(ProtocolError):
            session._retry_mutation(send)
        assert len(calls) == 3  # first try + two retries

    def test_deadline_stops_retrying_early(self):
        session = _NoReconnect(
            RetryPolicy(retries=50, deadline_ms=60, backoff_ms=40)
        )
        started = time.monotonic()
        with pytest.raises(ProtocolError):
            session._retry_mutation(lambda token: (_ for _ in ()).throw(
                ProtocolError("gone")
            ))
        assert time.monotonic() - started < 2.0

    def test_zero_retries_fails_fast(self):
        session = _NoReconnect(RetryPolicy(retries=0))
        with pytest.raises(ProtocolError):
            session._retryable(
                lambda: (_ for _ in ()).throw(ProtocolError("gone"))
            )
        assert session.reconnects == 0


class TestReconnectBehavior:
    def test_query_retries_through_server_restartish_drop(self, tmp_path):
        """A query whose connection dies mid-flight is retried on a fresh
        connection without tokens (queries are idempotent)."""
        with start_server(data_dir=str(tmp_path)) as handle:
            setup = connect(handle.address)
            setup.run(SCHEMA)
            plan = ChaosPlan("drop.response", at=1)
            with ChaosProxy.for_dsn(handle.address, plan) as proxy:
                db = connect(proxy.dsn(RETRY_OPTS))
                assert count(db) == 0
                assert plan.triggered

    def test_transaction_replay_after_drop(self, tmp_path):
        """Mid-transaction disconnect: the buffered statements replay on
        a fresh server transaction, and the commit applies once."""
        with start_server(data_dir=str(tmp_path)) as handle:
            setup = connect(handle.address)
            setup.run(SCHEMA)
            plan = ChaosPlan("drop.response", at=4)  # begin, s1, s2, <s3>
            with ChaosProxy.for_dsn(handle.address, plan) as proxy:
                db = connect(proxy.dsn(RETRY_OPTS))
                db.begin()
                db.run_one(INSERT.format(name="aa", pop=1))
                db.run_one(INSERT.format(name="bb", pop=2))
                db.run_one(INSERT.format(name="cc", pop=3))
                db.commit()
                assert plan.triggered
                assert count(db) == 3
        local = connect(f"file:{tmp_path}")
        try:
            assert count(local) == 3
        finally:
            local.close()

    def test_no_retry_preserves_legacy_failure(self, tmp_path):
        """Without ``retries`` the old contract holds: a dropped ack is a
        ProtocolError, surfaced immediately."""
        with start_server(data_dir=str(tmp_path)) as handle:
            db = connect(handle.address)
            db.run(SCHEMA)
            with inject("server.ack"):
                with pytest.raises(ProtocolError):
                    db.run_one(INSERT.format(name="aa", pop=1))
