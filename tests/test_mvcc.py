"""MVCC engine semantics: snapshot isolation, first-committer-wins,
rollback hygiene, and durable-commit interaction with the WAL.

These tests drive :class:`repro.server.MVCCEngine` directly, below the
socket layer — the socket-level counterparts live in ``test_server.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.api import connect
from repro.errors import CatalogError, ConflictError
from repro.server import MVCCEngine

SCHEMA = """
type city = tuple(<(cname, string), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""

INSERT = 'update cities := insert(cities, mktuple[<(cname, "{name}"), (pop, {pop})>])'


def count(session):
    return session.query("cities_rep feed count").value


class TestSnapshotIsolation:
    def test_uncommitted_writes_invisible_to_others(self):
        engine = MVCCEngine()
        writer, reader = engine.session(), engine.session()
        writer.run(SCHEMA)
        writer.begin()
        writer.run_one(INSERT.format(name="aa", pop=1))
        assert count(writer) == 1  # own writes visible
        assert count(reader) == 0  # not yet committed
        writer.commit()
        assert count(reader) == 1

    def test_open_transaction_reads_its_snapshot(self):
        engine = MVCCEngine()
        writer, reader = engine.session(), engine.session()
        writer.run(SCHEMA)
        reader.begin()
        assert count(reader) == 0
        writer.run_one(INSERT.format(name="aa", pop=1))
        # reader began before the insert committed: still sees the snapshot
        assert count(reader) == 0
        reader.commit()
        assert count(reader) == 1

    def test_transaction_local_type_alias(self):
        engine = MVCCEngine()
        session = engine.session()
        session.begin()
        session.run_one("type t = tuple(<(a, int)>)")
        session.run_one("create r : rel(t)")
        session.commit()
        assert "create r : rel(t)" in engine.dump()


class TestFirstCommitterWins:
    def _conflicting_pair(self, engine):
        first, second = engine.session(), engine.session()
        first.run(SCHEMA)
        first.begin()
        second.begin()
        first.run_one(INSERT.format(name="aa", pop=1))
        second.run_one(INSERT.format(name="bb", pop=2))
        return first, second

    def test_loser_raises_conflict_error_with_names(self):
        engine = MVCCEngine()
        first, second = self._conflicting_pair(engine)
        first.commit()
        with pytest.raises(ConflictError) as info:
            second.commit()
        assert info.value.retryable
        assert "cities" in info.value.names
        assert engine.metrics["mvcc.conflicts"] == 1
        assert second.counters["conflicts"] == 1

    def test_loser_transaction_is_aborted(self):
        engine = MVCCEngine()
        first, second = self._conflicting_pair(engine)
        first.commit()
        with pytest.raises(ConflictError):
            second.commit()
        assert not second.in_transaction
        # the losing write never became visible
        assert count(first) == 1

    def test_retry_after_conflict_succeeds(self):
        engine = MVCCEngine()
        first, second = self._conflicting_pair(engine)
        first.commit()
        with pytest.raises(ConflictError):
            second.commit()
        second.begin()
        second.run_one(INSERT.format(name="bb", pop=2))
        second.commit()
        assert count(first) == 2

    def test_disjoint_writes_both_commit(self):
        engine = MVCCEngine()
        first, second = engine.session(), engine.session()
        first.run(SCHEMA)
        first.begin()
        second.begin()
        first.run_one("type ta = tuple(<(a, int)>)")
        second.run_one("type tb = tuple(<(b, int)>)")
        first.commit()
        second.commit()  # touched different names: no conflict
        dump = engine.dump()
        assert "ta" in dump and "tb" in dump


class TestSessionContract:
    def test_auto_commit_outside_transaction(self):
        engine = MVCCEngine()
        session = engine.session()
        session.run(SCHEMA)
        session.run_one(INSERT.format(name="aa", pop=1))
        assert engine.metrics["mvcc.commits"] >= 5  # one per statement

    def test_rollback_discards_writes(self):
        engine = MVCCEngine()
        session = engine.session()
        session.run(SCHEMA)
        session.begin()
        session.run_one(INSERT.format(name="aa", pop=1))
        session.rollback()
        assert count(session) == 0
        assert engine.metrics["mvcc.rollbacks"] == 1

    def test_atomic_run_commits_as_one(self):
        engine = MVCCEngine()
        session = engine.session()
        before = engine.metrics["mvcc.commits"]
        session.run(SCHEMA + INSERT.format(name="aa", pop=1), atomic=True)
        assert engine.metrics["mvcc.commits"] == before + 1
        assert count(session) == 1

    def test_atomic_cannot_nest(self):
        engine = MVCCEngine()
        session = engine.session()
        session.begin()
        with pytest.raises(CatalogError, match="nest"):
            session.run("query 1 + 1", atomic=True)

    def test_closed_session_queries_ok_mutations_raise(self):
        engine = MVCCEngine()
        session = engine.session()
        session.run(SCHEMA)
        session.run_one(INSERT.format(name="aa", pop=1))
        session.close()
        session.close()  # idempotent
        assert session.closed
        assert count(session) == 1
        with pytest.raises(CatalogError, match="closed"):
            session.run_one(INSERT.format(name="bb", pop=2))
        with pytest.raises(CatalogError):
            session.begin()


class TestDurableMVCC:
    def _wal_bytes(self, data_dir):
        total = 0
        for name in os.listdir(data_dir):
            if name.startswith("wal"):
                total += os.path.getsize(os.path.join(data_dir, name))
        return total

    def test_rollback_leaves_no_wal_residue(self, tmp_path):
        engine = MVCCEngine(data_dir=str(tmp_path))
        session = engine.session()
        session.run(SCHEMA)
        baseline = self._wal_bytes(tmp_path)
        session.begin()
        session.run_one(INSERT.format(name="aa", pop=1))
        session.rollback()
        assert self._wal_bytes(tmp_path) == baseline
        engine.close()

    def test_conflict_loser_leaves_no_wal_residue(self, tmp_path):
        engine = MVCCEngine(data_dir=str(tmp_path))
        first, second = engine.session(), engine.session()
        first.run(SCHEMA)
        first.begin()
        second.begin()
        first.run_one(INSERT.format(name="aa", pop=1))
        second.run_one(INSERT.format(name="bb", pop=2))
        first.commit()
        after_win = self._wal_bytes(tmp_path)
        with pytest.raises(ConflictError):
            second.commit()
        assert self._wal_bytes(tmp_path) == after_win
        engine.close()

    def test_committed_transaction_survives_reopen(self, tmp_path):
        engine = MVCCEngine(data_dir=str(tmp_path))
        session = engine.session()
        session.begin()
        session.run(SCHEMA.strip() + "\n" + INSERT.format(name="aa", pop=1))
        session.commit()
        expected = engine.dump()
        engine.close()
        with connect(data_dir=str(tmp_path)) as recovered:
            assert recovered.dump() == expected
            assert count(recovered) == 1
