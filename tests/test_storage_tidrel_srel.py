"""TID relations, secondary indexes, and temporary relations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import SRel, TidRelation
from repro.storage.io import PageManager
from repro.storage.tidrel import SecondaryIndex


class TestTidRelation:
    def test_insert_returns_stable_tids(self):
        rel = TidRelation(page_capacity=4, pages=PageManager())
        tids = rel.stream_insert(range(10))
        assert len(set(tids)) == 10
        for tid, value in zip(tids, range(10)):
            assert rel.fetch(tid) == value

    def test_scan_skips_deleted(self):
        rel = TidRelation(page_capacity=4, pages=PageManager())
        tids = rel.stream_insert(range(10))
        rel.delete(tids[3])
        rel.delete(tids[7])
        assert list(rel.scan()) == [0, 1, 2, 4, 5, 6, 8, 9]
        assert len(rel) == 8

    def test_fetch_deleted_raises(self):
        rel = TidRelation(pages=PageManager())
        tid = rel.insert("x")
        rel.delete(tid)
        with pytest.raises(StorageError):
            rel.fetch(tid)
        with pytest.raises(StorageError):
            rel.delete(tid)

    def test_invalid_tid(self):
        rel = TidRelation(pages=PageManager())
        with pytest.raises(StorageError):
            rel.fetch((99, 0))

    def test_replace_in_place(self):
        rel = TidRelation(pages=PageManager())
        tid = rel.insert("old")
        rel.replace(tid, "new")
        assert rel.fetch(tid) == "new"

    def test_scan_with_tids(self):
        rel = TidRelation(page_capacity=2, pages=PageManager())
        tids = rel.stream_insert("abc")
        assert [t for t, _ in rel.scan_with_tids()] == tids


class TestSecondaryIndex:
    def test_build_and_range(self):
        rel = TidRelation(page_capacity=4, pages=PageManager())
        rel.stream_insert([30, 10, 20, 40])
        index = SecondaryIndex(rel, key=lambda v: v)
        index.build()
        assert list(index.fetch_range(15, 35)) == [20, 30]
        assert len(index) == 4

    def test_incremental_maintenance(self):
        rel = TidRelation(pages=PageManager())
        index = SecondaryIndex(rel, key=lambda v: v)
        tid = rel.insert(5)
        index.insert(tid, 5)
        assert list(index.fetch_range(0, 10)) == [5]
        assert index.delete(tid, 5)
        assert list(index.tids_in_range(0, 10)) == []

    @given(st.lists(st.integers(0, 100), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_range_matches_reference(self, values):
        rel = TidRelation(page_capacity=8, pages=PageManager())
        rel.stream_insert(values)
        index = SecondaryIndex(rel, key=lambda v: v)
        index.build()
        got = sorted(index.fetch_range(25, 75))
        assert got == sorted(v for v in values if 25 <= v <= 75)


class TestSRel:
    def test_collect_and_scan(self):
        srel = SRel(range(10), page_capacity=3, pages=PageManager())
        assert list(srel) == list(range(10))
        assert len(srel) == 10

    def test_append(self):
        srel = SRel(pages=PageManager())
        srel.append("x")
        assert list(srel) == ["x"]

    def test_rescannable(self):
        # Unlike streams, a collected relation can be scanned repeatedly.
        srel = SRel(range(5), pages=PageManager())
        assert list(srel) == list(srel)

    def test_page_accounting(self):
        pages = PageManager()
        srel = SRel(range(100), page_capacity=10, pages=pages)
        before = pages.stats.reads
        list(srel.scan())
        assert pages.stats.reads - before == 10
