"""Whole programs against the nested relational and complex object models —
the generic interpreter really is model-independent."""

import pytest

from repro.catalog import Database
from repro.lang import Interpreter
from repro.models.complex_objects import complex_object_model
from repro.models.nested import nested_relational_model


@pytest.fixture()
def nested_interp():
    sos, algebra = nested_relational_model()
    return Interpreter(Database(sos, algebra))


@pytest.fixture()
def co_interp():
    sos, algebra = complex_object_model()
    return Interpreter(Database(sos, algebra))


class TestNestedPrograms:
    def test_nested_schema_and_select(self, nested_interp):
        nested_interp.run(
            """
type author = tuple(<(name, string), (country, string)>)
type book = tuple(<(title, string), (authors, rel(author)), (year, int)>)
create books : rel(book)
"""
        )
        # fill via the Python API (tuples contain nested relation values)
        from repro.core.algebra import Relation, TupleValue
        from repro.core.types import attr_type, rel_type

        db = nested_interp.database
        book_t = db.aliases["book"]
        author_t = db.aliases["author"]
        authors_rel_t = attr_type(book_t, "authors")
        inner = Relation(authors_rel_t, [TupleValue(author_t, ("Gueting", "DE"))])
        books = Relation(rel_type(book_t), [TupleValue(book_t, ("SOS", inner, 1993))])
        db.set_value("books", books)

        result = nested_interp.run_one("query books select[year = 1993]")
        assert len(result.value.rows) == 1

    def test_unnest_in_concrete_syntax(self, nested_interp):
        self.test_nested_schema_and_select(nested_interp)
        result = nested_interp.run_one("query books unnest[authors]")
        row = result.value.rows[0]
        assert row.attr("name") == "Gueting"
        assert row.attr("title") == "SOS"

    def test_nest_in_concrete_syntax(self, nested_interp):
        self.test_nested_schema_and_select(nested_interp)
        result = nested_interp.run_one(
            "query books unnest[authors] nest[<name, country>, authors]"
        )
        assert len(result.value.rows) == 1
        assert len(result.value.rows[0].attr("authors")) == 1


class TestComplexObjectPrograms:
    def test_sets_in_concrete_syntax(self, co_interp):
        # mktuple is not part of the complex object model; build via API.
        co_interp.run(
            """
type person = tuple(<(name, string), (children, set(string))>)
create p : person
"""
        )
        from repro.core.algebra import TupleValue
        from repro.core.types import TypeApp
        from repro.models.complex_objects import ObjectSet

        db = co_interp.database
        person_t = db.aliases["person"]
        children = ObjectSet(TypeApp("set", (TypeApp("string"),)), ["kim", "lee"])
        db.set_value("p", TupleValue(person_t, ("ann", children)))

        assert co_interp.run_one("query card(p children)").value == 2
        assert co_interp.run_one('query "kim" member p children').value is True
        filtered = co_interp.run_one('query p children filter_set[fun (c: string) c != "kim"]')
        assert sorted(filtered.value) == ["lee"]

    def test_mkset_literal(self, co_interp):
        result = co_interp.run_one("query card(mkset[<1, 2, 2, 3>])")
        assert result.value == 3
