"""Typechecking polymorphic operators (paper Section 2.2) — experiment E4."""

import pytest

from repro.core.terms import Apply, Call, Fun, ListTerm, Literal, Var
from repro.core.typecheck import TypeChecker
from repro.core.types import (
    FunType,
    TypeApp,
    format_type,
    rel_type,
    tuple_type,
)
from repro.errors import NoMatchingOperator, TypeCheckError
from repro.models.relational import relational_model

INT = TypeApp("int")
REAL = TypeApp("real")
STRING = TypeApp("string")
BOOL = TypeApp("bool")

PERSON = tuple_type([("name", STRING), ("age", INT)])
PERSONS = rel_type(PERSON)
CITY = tuple_type([("cname", STRING), ("pop", INT)])
CITIES = rel_type(CITY)


@pytest.fixture()
def tc():
    sos, _ = relational_model()
    objects = {"persons": PERSONS, "cities": CITIES}
    return TypeChecker(sos, object_types=objects.get)


def age_pred(value=30):
    return Fun(
        (("p", PERSON),), Apply(">", (Apply("age", (Var("p"),)), Literal(value)))
    )


class TestLiterals:
    def test_int(self, tc):
        assert tc.type_of(Literal(1)) == INT

    def test_real(self, tc):
        assert tc.type_of(Literal(1.5)) == REAL

    def test_string(self, tc):
        assert tc.type_of(Literal("x")) == STRING

    def test_bool_is_not_int(self, tc):
        assert tc.type_of(Literal(True)) == BOOL


class TestComparisons:
    """forall data in DATA. data x data -> bool"""

    def test_same_data_type_ok(self, tc):
        assert tc.type_of(Apply("=", (Literal(1), Literal(2)))) == BOOL
        assert tc.type_of(Apply("<", (Literal("a"), Literal("b")))) == BOOL

    def test_mixed_data_types_rejected(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("=", (Literal(1), Literal("x"))))

    def test_relations_are_not_data(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("<", (Var("persons"), Var("persons"))))


class TestSelect:
    """forall rel: rel(tuple) in REL. rel x (tuple -> bool) -> rel"""

    def test_paper_example(self, tc):
        term = tc.check(Apply("select", (Var("persons"), age_pred())))
        assert term.type == PERSONS

    def test_result_schema_equals_operand_schema(self, tc):
        term = tc.check(Apply("select", (Var("cities"), Fun((("c", CITY),), Apply(">", (Apply("pop", (Var("c"),)), Literal(0)))))))
        assert term.type == CITIES

    def test_predicate_over_wrong_tuple_rejected(self, tc):
        wrong = Fun((("c", CITY),), Apply(">", (Apply("pop", (Var("c"),)), Literal(0))))
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("select", (Var("persons"), wrong)))

    def test_predicate_must_yield_bool(self, tc):
        bad = Fun((("p", PERSON),), Apply("age", (Var("p"),)))
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("select", (Var("persons"), bad)))

    def test_untyped_parameter_inferred_from_context(self, tc):
        pred = Fun((("p", None),), Apply(">", (Apply("age", (Var("p"),)), Literal(1))))
        term = tc.check(Apply("select", (Var("persons"), pred)))
        assert term.args[1].params[0][1] == PERSON


class TestImplicitLambda:
    """The shorthand of Section 2.3: persons select[age > 30]."""

    def test_shorthand_elaborates(self, tc):
        term = tc.check(
            Apply("select", (Var("persons"), Apply(">", (Var("age"), Literal(30)))))
        )
        fun = term.args[1]
        assert isinstance(fun, Fun)
        assert fun.params[0][1] == PERSON
        # body rewritten: age -> age(p)
        body = fun.body
        assert body.op == ">"
        assert isinstance(body.args[0], Apply) and body.args[0].op == "age"

    def test_unknown_attribute_in_shorthand_fails(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(
                Apply("select", (Var("persons"), Apply(">", (Var("salary"), Literal(1)))))
            )


class TestAttributeAccess:
    """forall tuple: tuple(list), (a, d) in list. tuple -> d   a"""

    def test_attr_resolution(self, tc):
        term = tc.check(
            Fun((("p", PERSON),), Apply("age", (Var("p"),)))
        )
        assert term.type == FunType((PERSON,), INT)

    def test_missing_attr(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(Fun((("p", PERSON),), Apply("salary", (Var("p"),))))


class TestUnion:
    """forall rel in REL. rel+ -> rel — same schema required."""

    def test_same_schema(self, tc):
        term = tc.check(Apply("union", (ListTerm((Var("persons"), Var("persons"))),)))
        assert term.type == PERSONS

    def test_schema_mismatch_rejected(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("union", (ListTerm((Var("persons"), Var("cities"))),)))

    def test_single_operand(self, tc):
        assert tc.check(Apply("union", (ListTerm((Var("cities"),)),))).type == CITIES


class TestJoin:
    """The join type operator computes the concatenated schema."""

    def test_result_type(self, tc):
        pred = Fun(
            (("p", PERSON), ("c", CITY)),
            Apply("=", (Apply("name", (Var("p"),)), Apply("cname", (Var("c"),)))),
        )
        term = tc.check(Apply("join", (Var("persons"), Var("cities"), pred)))
        assert format_type(term.type) == (
            "rel(tuple(<(name, string), (age, int), (cname, string), (pop, int)>))"
        )

    def test_duplicate_attributes_rejected(self, tc):
        pred = Fun((("a", PERSON), ("b", PERSON)), Literal(True))
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("join", (Var("persons"), Var("persons"), pred)))


class TestArithmetic:
    def test_int_int_is_int(self, tc):
        assert tc.type_of(Apply("+", (Literal(1), Literal(2)))) == INT

    def test_int_real_promotes(self, tc):
        assert tc.type_of(Apply("*", (Literal(1), Literal(1.1)))) == REAL

    def test_div_is_integer_only(self, tc):
        assert tc.type_of(Apply("div", (Literal(7), Literal(2)))) == INT
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("div", (Literal(7.0), Literal(2))))


class TestConstants:
    def test_empty_resolves_from_expected_type(self, tc):
        term = tc.check_value_term(Var("empty"), PERSONS)
        assert term.type == PERSONS
        assert term.resolved.spec.name == "empty"

    def test_empty_unresolvable_without_expectation(self, tc):
        with pytest.raises(TypeCheckError):
            tc.check(Var("empty"))


class TestUpdateOps:
    def test_modify_dependent_attr_check(self, tc):
        good = Apply(
            "modify",
            (
                Var("persons"),
                age_pred(0),
                Var("age"),
                Fun((("p", PERSON),), Apply("+", (Apply("age", (Var("p"),)), Literal(1)))),
            ),
        )
        assert tc.check(good).type == PERSONS

    def test_modify_wrong_value_type_rejected(self, tc):
        bad = Apply(
            "modify",
            (
                Var("persons"),
                age_pred(0),
                Var("age"),
                Fun((("p", PERSON),), Apply("name", (Var("p"),))),  # string, not int
            ),
        )
        with pytest.raises(NoMatchingOperator):
            tc.check(bad)

    def test_modify_unknown_attribute_rejected(self, tc):
        bad = Apply(
            "modify",
            (Var("persons"), age_pred(0), Var("salary"), age_pred(0)),
        )
        with pytest.raises(NoMatchingOperator):
            tc.check(bad)


class TestViews:
    def test_nullary_view_dereferences(self, tc):
        objects = {"persons": PERSONS, "view": FunType((), PERSONS)}
        tc2 = TypeChecker(tc.sos, object_types=objects.get)
        term = tc2.check(Apply("select", (Var("view"), age_pred())))
        assert isinstance(term.args[0], Call)
        assert term.type == PERSONS

    def test_parameterized_view_call(self, tc):
        objects = {"cities_in": FunType((STRING,), PERSONS)}
        tc2 = TypeChecker(tc.sos, object_types=objects.get)
        term = tc2.check(Call(Var("cities_in"), (Literal("Germany"),)))
        assert term.type == PERSONS

    def test_call_arity_checked(self, tc):
        objects = {"cities_in": FunType((STRING,), PERSONS)}
        tc2 = TypeChecker(tc.sos, object_types=objects.get)
        with pytest.raises(TypeCheckError):
            tc2.check(Call(Var("cities_in"), ()))

    def test_call_argument_type_checked(self, tc):
        objects = {"cities_in": FunType((STRING,), PERSONS)}
        tc2 = TypeChecker(tc.sos, object_types=objects.get)
        with pytest.raises(TypeCheckError):
            tc2.check(Call(Var("cities_in"), (Literal(1),)))


class TestErrors:
    def test_unknown_operator(self, tc):
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("frobnicate", (Literal(1),)))

    def test_unknown_identifier(self, tc):
        with pytest.raises(TypeCheckError):
            tc.check(Var("nonexistent"))

    def test_failed_overload_leaves_no_partial_elaboration(self, tc):
        # 'insert' is overloaded across levels in the full system; here the
        # relational one must reject then a retry on the same term object
        # must behave identically.
        term = Apply("insert", (Var("persons"), Literal(1)))
        with pytest.raises(NoMatchingOperator):
            tc.check(term)
        with pytest.raises(NoMatchingOperator):
            tc.check(term)
