"""Unit tests for value terms: formatting, alpha-equality, substitution."""

from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    TupleTerm,
    Var,
    clone_term,
    format_term,
    free_variables,
    same_term,
    substitute_term,
    term_fingerprint,
    walk_terms,
)
from repro.core.types import TypeApp, tuple_type

INT = TypeApp("int")
PERSON = tuple_type([("name", TypeApp("string")), ("age", INT)])

# The paper's running example: select (persons, fun (p: person) >(age(p), 30))
SELECT = Apply(
    "select",
    (
        Var("persons"),
        Fun((("p", PERSON),), Apply(">", (Apply("age", (Var("p"),)), Literal(30)))),
    ),
)


class TestFormatting:
    def test_abstract_syntax(self):
        assert (
            format_term(Apply("top", (Apply("push", (Var("empty"), Literal(7))),)))
            == "top(push(empty, 7))"
        )

    def test_fun_notation(self):
        t = Fun((("p", PERSON),), Apply("age", (Var("p"),)))
        assert format_term(t).startswith("fun (p: tuple(")

    def test_string_literal(self):
        assert format_term(Literal("France")) == '"France"'

    def test_bool_literal(self):
        assert format_term(Literal(True)) == "true"

    def test_list_and_tuple_terms(self):
        assert format_term(ListTerm((Literal(1), Literal(2)))) == "<1, 2>"
        assert format_term(TupleTerm((Literal(1), Literal(2)))) == "(1, 2)"

    def test_call(self):
        assert format_term(Call(Var("cities_in"), (Literal("Germany"),))) == (
            'cities_in("Germany")'
        )


class TestSameTerm:
    def test_structural_equality(self):
        other = Apply(
            "select",
            (
                Var("persons"),
                Fun(
                    (("p", PERSON),),
                    Apply(">", (Apply("age", (Var("p"),)), Literal(30))),
                ),
            ),
        )
        assert same_term(SELECT, other)

    def test_alpha_equality(self):
        renamed = Apply(
            "select",
            (
                Var("persons"),
                Fun(
                    (("q", PERSON),),
                    Apply(">", (Apply("age", (Var("q"),)), Literal(30))),
                ),
            ),
        )
        assert same_term(SELECT, renamed)

    def test_different_literal(self):
        other = Apply("f", (Literal(30),))
        assert not same_term(other, Apply("f", (Literal(31),)))

    def test_literal_type_sensitivity(self):
        # 1 (int) and 1.0 (real) are different literals
        assert not same_term(Literal(1), Literal(1.0))

    def test_free_variable_names_matter(self):
        assert not same_term(Var("a"), Var("b"))

    def test_fingerprint_agrees_with_same_term(self):
        renamed = Apply(
            "select",
            (
                Var("persons"),
                Fun(
                    (("q", PERSON),),
                    Apply(">", (Apply("age", (Var("q"),)), Literal(30))),
                ),
            ),
        )
        assert term_fingerprint(SELECT) == term_fingerprint(renamed)


class TestFreeVariables:
    def test_lambda_binds(self):
        assert free_variables(SELECT) == {"persons"}

    def test_nested_shadowing(self):
        t = Fun((("x", INT),), Apply("+", (Var("x"), Var("y"))))
        assert free_variables(t) == {"y"}


class TestSubstitution:
    def test_substitutes_free_only(self):
        t = Fun((("x", INT),), Apply("+", (Var("x"), Var("y"))))
        out = substitute_term(t, {"x": Literal(1), "y": Literal(2)})
        assert same_term(
            out, Fun((("x", INT),), Apply("+", (Var("x"), Literal(2))))
        )


class TestClone:
    def test_clone_is_equal_but_distinct(self):
        copy = clone_term(SELECT)
        assert same_term(copy, SELECT)
        assert copy is not SELECT
        assert copy.args[1] is not SELECT.args[1]

    def test_clone_drops_annotations(self):
        t = Var("x")
        t.type = INT
        assert clone_term(t).type is None


class TestWalk:
    def test_walk_visits_all(self):
        nodes = list(walk_terms(SELECT))
        assert any(isinstance(n, Literal) and n.value == 30 for n in nodes)
        assert any(isinstance(n, Fun) for n in nodes)
        # select, persons, fun, >, age(p), p, 30
        assert len(nodes) == 7
