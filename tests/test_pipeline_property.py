"""Property test: random stream pipelines agree with a Python reference.

Random sequences of rep-level stream operators (filter / head / sortby /
rdup / project) are rendered to concrete syntax, run through the full
parse → typecheck → evaluate stack, and compared against a direct Python
evaluation of the same pipeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.relational import make_tuple
from repro.system import build_relational_system

SYSTEM = build_relational_system()
SYSTEM.run(
    """
type row = tuple(<(k, int), (tag, string)>)
create data : srel(row)
"""
)
_ROW_T = SYSTEM.database.aliases["row"]
_ROWS = [(i * 7 % 23, "abc"[i % 3]) for i in range(40)]
for k, tag in _ROWS:
    SYSTEM.database.objects["data"].value.append(make_tuple(_ROW_T, k=k, tag=tag))


def apply_filter(threshold):
    text = f"filter[k >= {threshold}]"

    def ref(rows):
        return [r for r in rows if r[0] >= threshold]

    return text, ref


def apply_head(n):
    text = f"head[{n}]"

    def ref(rows):
        return rows[:n]

    return text, ref


def apply_sortby():
    text = "sortby[k]"

    def ref(rows):
        return sorted(rows, key=lambda r: r[0])

    return text, ref


def apply_rdup():
    text = "rdup"

    def ref(rows):
        out = []
        for r in rows:
            if not out or out[-1] != r:
                out.append(r)
        return out

    return text, ref


steps = st.one_of(
    st.integers(0, 25).map(apply_filter),
    st.integers(0, 30).map(apply_head),
    st.just(apply_sortby()),
    st.just(apply_rdup()),
)


class TestPipelines:
    @given(st.lists(steps, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_pipeline_matches_reference(self, pipeline):
        query = "query data feed " + " ".join(text for text, _ in pipeline) + " count"
        result = SYSTEM.run_one(query)
        rows = list(_ROWS)
        for _, ref in pipeline:
            rows = ref(rows)
        assert result.value == len(rows), query

    @given(st.lists(steps, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_pipeline_values_match_reference(self, pipeline):
        query = "query data feed " + " ".join(text for text, _ in pipeline)
        result = SYSTEM.run_one(query)
        rows = list(_ROWS)
        for _, ref in pipeline:
            rows = ref(rows)
        got = [(t.attr("k"), t.attr("tag")) for t in result.value]
        assert got == rows, query
