"""The textual specification language: specifications are data (Section 2).

The key test loads the paper's relational specification (Sections 2.1/2.2)
from text, attaches the algebra by name, and runs the running-example query
through the generic machinery.
"""

import pytest

from repro.core.algebra import Evaluator, SecondOrderAlgebra
from repro.core.operators import TypeOperator
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    ListSort,
    ProductSort,
    UnionSort,
    VarSort,
)
from repro.core.typecheck import TypeChecker
from repro.core.terms import Apply, Literal, Var
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.errors import ParseError, SpecificationError
from repro.models.relational import (
    _join_impl,
    _join_type,
    _select_impl,
    _union_impl,
    make_relation,
    register_relational_carriers,
)
from repro.models.common import _COMPARISONS, _comparable
from repro.spec import parse_spec

RELATIONAL_SPEC = """
kinds IDENT, DATA, TUPLE, REL

type constructors
    -> IDENT                        ident
    -> DATA                         int, real, string, bool
    (ident x DATA)+ -> TUPLE        tuple
    TUPLE -> REL                    rel

operators
    forall data in DATA.
        data x data -> bool         =, !=, <, <=, >=, >     syntax ( _ # _ )
    forall rel: rel(tuple) in REL.
        rel x (tuple -> bool) -> rel   select               syntax _ #[ _ ]
        rel+ -> rel                    union                syntax _ #
        rel x tuple ~> rel             insert
    forall rel1: rel(tuple1) in REL. forall rel2: rel(tuple2) in REL.
        rel1 x rel2 x (tuple1 x tuple2 -> bool) -> rel: REL   join   syntax _ _ #[ _ ]
"""

INT = TypeApp("int")
STRING = TypeApp("string")
PERSON = tuple_type([("name", STRING), ("age", INT)])
PERSONS = rel_type(PERSON)


@pytest.fixture()
def spec_sos():
    impls = {"select": _select_impl, "union": _union_impl, "join": _join_impl}
    for name, fn in _COMPARISONS.items():
        impls[name] = _comparable(fn, name)
    sos = parse_spec(
        RELATIONAL_SPEC, impls=impls, type_operators={"join": _join_type}
    )
    from repro.core.operators import AttributeFamily

    sos.add_family(AttributeFamily())
    return sos


class TestStructure:
    def test_kinds(self, spec_sos):
        names = {k.name for k in spec_sos.type_system.kinds}
        assert names == {"IDENT", "DATA", "TUPLE", "REL"}

    def test_constant_constructors(self, spec_sos):
        data = {t.constructor for t in spec_sos.type_system.constant_types_of_kind("DATA")}
        assert data == {"int", "real", "string", "bool"}

    def test_tuple_constructor_shape(self, spec_sos):
        ctor = spec_sos.type_system.constructor("tuple")
        (arg,) = ctor.arg_sorts
        assert isinstance(arg, ListSort)
        assert isinstance(arg.element, ProductSort)

    def test_types_well_formed(self, spec_sos):
        spec_sos.type_system.check_type(PERSONS)

    def test_operator_count(self, spec_sos):
        assert len(spec_sos.operators("=")) == 1
        assert len(spec_sos.operators("select")) == 1
        select = spec_sos.operators("select")[0]
        assert select.syntax.text == "_ #[ _ ]"
        assert not select.is_update

    def test_update_marker(self, spec_sos):
        assert spec_sos.operators("insert")[0].is_update

    def test_join_has_type_operator(self, spec_sos):
        join = spec_sos.operators("join")[0]
        assert isinstance(join.result, TypeOperator)
        assert join.result.result_kind.name == "REL"

    def test_union_list_sort(self, spec_sos):
        union = spec_sos.operators("union")[0]
        assert isinstance(union.arg_sorts[0], ListSort)
        assert isinstance(union.arg_sorts[0].element, VarSort)

    def test_trailing_comments_ignored(self):
        sos = parse_spec(
            "kinds DATA                -- the data kinds\n"
            "type constructors\n"
            "    -> DATA  int, bool    -- constants\n"
        )
        assert sos.type_system.has_constructor("int")
        assert sos.type_system.has_constructor("bool")


class TestSemantics:
    """The loaded spec typechecks and evaluates the running example."""

    def test_query_through_spec(self, spec_sos):
        algebra = SecondOrderAlgebra(spec_sos)
        register_relational_carriers(algebra)
        persons = make_relation(
            PERSONS, [{"name": "ann", "age": 20}, {"name": "bob", "age": 40}]
        )
        tc = TypeChecker(spec_sos, object_types={"persons": PERSONS}.get)
        ev = Evaluator(algebra, resolver={"persons": persons}.get)
        q = tc.check(
            Apply("select", (Var("persons"), Apply(">", (Var("age"), Literal(30)))))
        )
        assert [t.attr("name") for t in ev.eval(q)] == ["bob"]

    def test_join_type_computed(self, spec_sos):
        tc = TypeChecker(
            spec_sos,
            object_types={
                "persons": PERSONS,
                "cities": rel_type(tuple_type([("cname", STRING)])),
            }.get,
        )
        q = tc.check(
            Apply(
                "join",
                (
                    Var("persons"),
                    Var("cities"),
                    Apply("=", (Var("name"), Var("cname"))),
                ),
            )
        )
        from repro.core.types import format_type

        assert "cname" in format_type(q.type)


class TestRepSpec:
    """Section 4's representation specification, textual form."""

    REP_SPEC = """
kinds IDENT, DATA, ORD, TUPLE, STREAM, BTREE, RELREP, SREL

type constructors
    -> IDENT                       ident
    -> DATA                        int, string, bool
    -> ORD                         ord_marker
    (ident x DATA)+ -> TUPLE       tuple
    TUPLE -> STREAM                stream
    TUPLE -> SREL                  srel
    TUPLE -> RELREP                relrep
    tuple: TUPLE x ident x ORD -> BTREE    btree
    tuple: TUPLE x (tuple -> ORD) -> BTREE  btree

subtypes
    srel(tuple) < relrep(tuple)
    btree(tuple, attrname, dtype) < relrep(tuple)

operators
    forall relrep: relrep(tuple) in RELREP.
        relrep -> stream(tuple)    feed       syntax _ #
    forall stream: stream(tuple) in STREAM.
        stream x (tuple -> bool) -> stream   filter   syntax _ #[ _ ]
"""

    def test_parses(self):
        sos = parse_spec(self.REP_SPEC)
        assert len(sos.type_system.overloads("btree")) == 2
        feed = sos.operators("feed")[0]
        assert isinstance(feed.result, AppSort)
        assert len(sos.subtypes.rules) == 2

    def test_binding_constructor_argument(self):
        sos = parse_spec(self.REP_SPEC)
        attr_variant = sos.type_system.overloads("btree")[0]
        assert isinstance(attr_variant.arg_sorts[0], BindSort)
        fn_variant = sos.type_system.overloads("btree")[1]
        assert isinstance(fn_variant.arg_sorts[1], FunSort)


class TestErrors:
    def test_unknown_sort_name(self):
        with pytest.raises(ParseError) as exc:
            parse_spec("kinds A\n\ntype constructors\n    nonsense -> A  x")
        assert exc.value.line == 4
        assert exc.value.column == 5
        assert "line 4" in str(exc.value)

    def test_type_operator_without_compute(self):
        spec = """
kinds DATA, REL
type constructors
    -> DATA  int
operators
    forall rel in REL.
        rel x rel -> rel: REL   myjoin
"""
        with pytest.raises(SpecificationError):
            parse_spec(spec)

    def test_text_before_section(self):
        with pytest.raises(ParseError) as exc:
            parse_spec("hello\nkinds A")
        assert exc.value.line == 1
        assert exc.value.column == 1

    def test_union_kind_quantifier(self):
        spec = """
kinds IDENT, DATA, REL
type constructors
    -> IDENT  ident
    -> DATA   int
operators
    forall x in DATA | REL.
        x -> x   identity
"""
        sos = parse_spec(spec)
        q = sos.operators("identity")[0].quantifiers[0]
        assert isinstance(q.kind, UnionSort)
