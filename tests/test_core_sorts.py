"""Extended sorts: formatting and variable collection (Def. 3.2)."""

from repro.core.kinds import Kind
from repro.core.sorts import (
    AppSort,
    BindSort,
    FunSort,
    KindSort,
    ListSort,
    ProductSort,
    TypeSort,
    UnionSort,
    VarSort,
    format_sort,
    sort_variables,
)
from repro.core.types import TypeApp

DATA = Kind("DATA")
INT = TypeApp("int")


class TestFormatting:
    def test_kind(self):
        assert format_sort(KindSort(DATA)) == "DATA"

    def test_type(self):
        assert format_sort(TypeSort(INT)) == "int"

    def test_var_and_bind(self):
        assert format_sort(VarSort("rel")) == "rel"
        assert format_sort(BindSort("t", KindSort(DATA))) == "t: DATA"

    def test_product(self):
        s = ProductSort((TypeSort(INT), KindSort(DATA)))
        assert format_sort(s) == "(int x DATA)"

    def test_union(self):
        s = UnionSort((KindSort(DATA), VarSort("rel")))
        assert format_sort(s) == "(DATA | rel)"

    def test_list(self):
        assert format_sort(ListSort(VarSort("rel"))) == "rel+"

    def test_function(self):
        s = FunSort((VarSort("tuple"),), TypeSort(TypeApp("bool")))
        assert format_sort(s) == "(tuple -> bool)"

    def test_nullary_function(self):
        assert format_sort(FunSort((), TypeSort(INT))) == "(-> int)"

    def test_app(self):
        assert format_sort(AppSort("stream", (VarSort("tuple"),))) == "stream(tuple)"

    def test_nested(self):
        # The tuple constructor's argument sort: (ident x DATA)+
        s = ListSort(ProductSort((TypeSort(TypeApp("ident")), KindSort(DATA))))
        assert format_sort(s) == "(ident x DATA)+"


class TestSortVariables:
    def test_collects_across_shapes(self):
        s = FunSort(
            (VarSort("a"), ProductSort((VarSort("b"), KindSort(DATA)))),
            AppSort("stream", (VarSort("c"),)),
        )
        assert sort_variables(s) == {"a", "b", "c"}

    def test_bind_contributes_its_name(self):
        s = BindSort("bound", ListSort(VarSort("inner")))
        assert sort_variables(s) == {"bound", "inner"}

    def test_union(self):
        s = UnionSort((VarSort("x"), VarSort("y")))
        assert sort_variables(s) == {"x", "y"}

    def test_concrete_sorts_have_none(self):
        assert sort_variables(KindSort(DATA)) == set()
        assert sort_variables(TypeSort(INT)) == set()
