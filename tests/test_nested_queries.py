"""Nested model queries: soundness of the rule conditions and the
pushed-down-selection join rules.

Regression suite for a real bug: a catalog condition whose variable was
bound to a *subterm* (not an object name) used to degrade into a wildcard
lookup, silently dropping the subterm from the plan.
"""

import pytest

from repro.errors import OptimizationError


def expected_pairs(loaded_system, threshold):
    bt = loaded_system.database.objects["cities_rep"].value
    return sum(1 for t in bt.scan() if t.attr("pop") >= threshold)


class TestSelectUnderJoin:
    def test_outer_select_is_not_dropped(self, loaded_system):
        r = loaded_system.run_one(
            "query (cities select[pop >= 5000]) states join[center inside region]"
        )
        assert r.fired == ["join_inside_lsdtree_outer_select"]
        assert len(r.value) == expected_pairs(loaded_system, 5000)
        assert all(t.attr("pop") >= 5000 for t in r.value)

    def test_inner_select(self, loaded_system):
        r = loaded_system.run_one(
            'query cities (states select[sname = "s0"]) join[center inside region]'
        )
        assert r.fired == ["join_inside_lsdtree_inner_select"]
        assert all(t.attr("sname") == "s0" for t in r.value)
        # cross-check against filtering the full join
        full = loaded_system.run_one(
            "query cities states join[center inside region]"
        )
        expected = sum(1 for t in full.value if t.attr("sname") == "s0")
        assert len(r.value) == expected

    def test_generic_join_with_selects_on_both_sides(self, loaded_system):
        r = loaded_system.run_one(
            "query (cities select[pop >= 5000]) "
            '(states select[sname != "s0"]) '
            "join[fun (c: city, s: state) c pop > 0]"
        )
        assert r.fired == ["join_scan_both_select"]
        assert len(r.value) == expected_pairs(loaded_system, 5000) * 4

    def test_results_match_post_filtered_full_join(self, loaded_system):
        nested = loaded_system.run_one(
            "query (cities select[pop >= 5000]) states join[center inside region]"
        )
        full = loaded_system.run_one(
            "query cities states join[center inside region]"
        )
        a = sorted(
            (t.attr("cname"), t.attr("sname")) for t in nested.value
        )
        b = sorted(
            (t.attr("cname"), t.attr("sname"))
            for t in full.value
            if t.attr("pop") >= 5000
        )
        assert a == b


class TestSelectFusion:
    def test_stacked_selects_fuse_and_translate(self, loaded_system):
        r = loaded_system.run_one(
            "query (cities select[pop >= 100]) select[pop <= 5000]"
        )
        assert "select_fusion" in r.fired
        expected = loaded_system.run_one(
            "query cities_rep feed filter[pop >= 100 and pop <= 5000]"
        )
        assert sorted(t.attr("cname") for t in r.value) == sorted(
            t.attr("cname") for t in expected.value
        )

    def test_triple_stack(self, loaded_system):
        r = loaded_system.run_one(
            "query ((cities select[pop >= 100]) select[pop <= 9000]) "
            'select[cname != "c0"]'
        )
        assert r.fired.count("select_fusion") == 2
        for t in r.value:
            assert 100 <= t.attr("pop") <= 9000 and t.attr("cname") != "c0"

    def test_fused_select_under_join(self, loaded_system):
        r = loaded_system.run_one(
            "query ((cities select[pop >= 100]) select[pop <= 9000]) "
            "states join[center inside region]"
        )
        assert "select_fusion" in r.fired
        full = loaded_system.run_one("query cities states join[center inside region]")
        expected = sorted(
            (t.attr("cname"), t.attr("sname"))
            for t in full.value
            if 100 <= t.attr("pop") <= 9000
        )
        got = sorted((t.attr("cname"), t.attr("sname")) for t in r.value)
        assert got == expected


class TestUncoveredNestingFailsCleanly:
    def test_join_result_as_operand_raises(self, loaded_system):
        # a join nested under a select is not covered — it must error, never
        # produce a wrong plan.
        with pytest.raises(OptimizationError):
            loaded_system.run_one(
                "query (cities states join[center inside region]) "
                "select[pop >= 100]"
            )
