"""Stream combinators and pipelining semantics."""

import pytest

from repro.core.algebra import Stream, TupleValue
from repro.core.types import TypeApp, tuple_type
from repro.errors import ExecutionError
from repro.rep import streams as st

INT = TypeApp("int")
ROW = tuple_type([("k", INT), ("v", INT)])


def rows(n):
    return [TupleValue(ROW, (i, i * 10)) for i in range(n)]


def stream_of(n):
    return st.feed(ROW, iter(rows(n)))


class TestCombinators:
    def test_filter(self):
        out = st.filter_stream(stream_of(10), lambda t: t.attr("k") >= 7)
        assert [t.attr("k") for t in out] == [7, 8, 9]

    def test_project(self):
        out_t = tuple_type([("twice", INT)])
        out = st.project_stream(
            out_t, stream_of(3), [("twice", lambda t: t.attr("v") * 2)]
        )
        assert [t.attr("twice") for t in out] == [0, 20, 40]

    def test_replace(self):
        out = st.replace_stream(stream_of(3), "v", lambda t: -t.attr("k"))
        values = [(t.attr("k"), t.attr("v")) for t in out]
        assert values == [(0, 0), (1, -1), (2, -2)]

    def test_head(self):
        assert len(list(st.head_stream(stream_of(100), 5))) == 5

    def test_concat(self):
        out = st.concat_streams(ROW, [stream_of(2), stream_of(3)])
        assert len(list(out)) == 5

    def test_search_join(self):
        out_t = tuple_type([("k", INT), ("v", INT), ("k2", INT), ("v2", INT)])
        inner_t = tuple_type([("k2", INT), ("v2", INT)])

        def inner(t):
            k = t.attr("k")
            return st.feed(inner_t, iter([TupleValue(inner_t, (k, k))]))

        out = st.search_join_stream(out_t, stream_of(3), inner)
        assert [(t.attr("k"), t.attr("k2")) for t in out] == [(0, 0), (1, 1), (2, 2)]


class TestPipelining:
    def test_lazy_evaluation(self):
        """Stream operators must not consume their input eagerly."""
        consumed = []

        def source():
            for i in range(1000):
                consumed.append(i)
                yield TupleValue(ROW, (i, i))

        pipeline = st.head_stream(
            st.filter_stream(st.feed(ROW, source()), lambda t: t.attr("k") % 2 == 0),
            3,
        )
        assert [t.attr("k") for t in pipeline] == [0, 2, 4]
        # Only a prefix of the source was pulled.
        assert len(consumed) <= 6

    def test_streams_are_one_shot(self):
        s = stream_of(3)
        list(s)
        with pytest.raises(ExecutionError):
            list(s)
