"""The public facade: ``repro.api.connect`` and the unified result shape."""

from __future__ import annotations

import warnings

import pytest

from repro.api import Session, connect
from repro.errors import CatalogError
from repro.observe import Tracer
from repro.system import SystemResult

SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
update cities := insert(cities, mktuple[<(cname, "aa"), (center, pt(1, 1)), (pop, 100)>])
update cities := insert(cities, mktuple[<(cname, "bb"), (center, pt(2, 2)), (pop, 200000)>])
"""


class TestConnect:
    def test_relational_session(self):
        db = connect()
        assert isinstance(db, Session)
        assert "rep" in db.database.objects  # catalog pre-created
        db.run(SCHEMA)
        result = db.query("cities select[pop > 100000]")
        assert isinstance(result, SystemResult)
        assert [t.attr("cname") for t in result.value] == ["bb"]

    def test_model_session(self):
        db = connect(model="model")
        db.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)")
        db.run_one("update r := insert(r, mktuple[<(a, 7)>])")
        result = db.query("r select[a > 0]")
        assert isinstance(result, SystemResult)
        assert result.level == "model"
        assert len(result.value.rows) == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(CatalogError):
            connect(model="hierarchical")

    def test_model_session_takes_no_optimizer(self):
        from repro.optimizer import standard_optimizer

        with pytest.raises(CatalogError):
            connect(model="model", optimizer=standard_optimizer())
        with pytest.raises(CatalogError):
            connect(model="model").system  # no optimizer system behind it

    def test_custom_optimizer(self):
        from repro.optimizer import standard_optimizer

        opt = standard_optimizer()
        db = connect(optimizer=opt)
        assert db.system.optimizer is opt

    def test_trace_true_enables_collection(self):
        db = connect(trace=True)
        assert db.tracing
        db.run(SCHEMA)
        result = db.query("cities_rep feed count")
        assert result.metrics is not None
        assert result.metrics.tuples_out("feed") == 2

    def test_trace_callable_subscribes(self):
        events = []
        db = connect(trace=events.append)
        db.run_one("query 1 + 2")
        assert any(e.name == "statement" for e in events)
        assert db.tracing  # a callable also arms collection

    def test_trace_tracer_instance_is_the_bus(self):
        tracer = Tracer()
        db = connect(trace=tracer)
        assert db.tracer is tracer
        assert db.system.tracer is tracer


class TestResultShapeUnification:
    """run, run_one and query all speak SystemResult."""

    def test_relational_shapes_agree(self):
        db = connect()
        results = db.run(SCHEMA)
        assert all(isinstance(r, SystemResult) for r in results)
        one = db.run_one("query cities_rep feed count")
        via_query = db.query("cities_rep feed count")
        assert isinstance(one, SystemResult)
        assert isinstance(via_query, SystemResult)
        assert one.value == via_query.value == 2

    def test_model_shapes_agree(self):
        db = connect(model="model")
        results = db.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)")
        assert all(isinstance(r, SystemResult) for r in results)
        assert results[0].kind == "type"
        assert results[1].level == "model"

    def test_every_result_carries_timings(self):
        db = connect()
        for result in db.run(SCHEMA):
            assert result.timings["total"] >= 0.0
            assert "parse" in result.timings
        model_fired = db.query("cities select[pop > 0]")
        assert set(model_fired.timings) >= {
            "parse", "typecheck", "optimize", "execute", "total",
        }

    def test_metrics_off_by_default(self):
        db = connect()
        db.run(SCHEMA)
        result = db.query("cities_rep feed count")
        assert result.metrics is None and result.rule_trace is None


class TestSessionSurface:
    def test_dump_restore_round_trip(self):
        db = connect()
        db.run(SCHEMA)
        text = db.dump()
        clone = connect()
        clone.restore(text)
        assert clone.query("cities_rep feed count").value == 2

    def test_explain_passthrough(self):
        db = connect()
        db.run(SCHEMA)
        info = db.explain("cities select[pop > 100000]")
        assert info["translated"] is True
        assert info["fired"] == ["select_gt_btree_range"]

    def test_repr(self):
        assert "relational" in repr(connect())
        assert "model" in repr(connect(model="model"))


class TestDeprecatedShims:
    def test_old_factories_warn_once(self):
        from repro.system import sos_system

        for name in (
            "make_relational_system",
            "make_model_interpreter",
            "make_relational_database",
        ):
            factory = getattr(sos_system, name)
            sos_system._WARNED.discard(name)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                factory()
                factory()
            deprecations = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1, name
            assert "deprecated" in str(deprecations[0].message)
            assert "repro.api.connect" in str(deprecations[0].message)

    def test_old_factories_still_work(self):
        from repro.system import make_relational_system

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            system = make_relational_system()
        system.run("type t = tuple(<(a, int)>)")
        assert "t" in system.database.aliases

    def test_facade_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            db = connect()
            db.run(SCHEMA)
            db.query("cities_rep feed count")
            db.explain("cities select[pop > 0]", analyze=True)
            connect(model="model").run("type t = tuple(<(a, int)>)")
