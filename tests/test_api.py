"""The public facade: ``repro.api.connect``, DSNs, and the unified result
shape — run against BOTH session variants.

The ``db`` fixture is parametrized over ``local`` (in-process
:class:`LocalSession`) and ``network`` (a :class:`NetworkSession` to a
shared in-process server) — every test taking ``db`` asserts the same
behavior through both transports with one body.  Local-only machinery
(custom optimizers, tracer identity, the model-level interpreter,
restore) is tested separately below.
"""

from __future__ import annotations

import pytest

from repro.api import LocalSession, Session, connect
from repro.errors import (
    CatalogError,
    ParseError,
    ProtocolError,
    StatementError,
)
from repro.observe import Tracer
from repro.system import SystemResult

SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
update cities := insert(cities, mktuple[<(cname, "aa"), (center, pt(1, 1)), (pop, 100)>])
update cities := insert(cities, mktuple[<(cname, "bb"), (center, pt(2, 2)), (pop, 200000)>])
"""

# 4 cities strictly inside 4 disjoint state tiles: the spatial join matches
# each city exactly once, so search_join probe fan-out is deterministic.
SPATIAL_SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
""" + "".join(
    f'update states := insert(states, mktuple[<(sname, "s{i}"), '
    f"(region, region_box({i * 20}, 0, {i * 20 + 20}, 100))>])\n"
    for i in range(4)
) + "".join(
    f'update cities := insert(cities, mktuple[<(cname, "c{i}"), '
    f"(center, pt({i * 20 + 10}, 50)), (pop, {1000 * (i + 1)})>])\n"
    for i in range(4)
)


@pytest.fixture(scope="module")
def server_handle():
    from repro.server import start_server

    handle = start_server(allow_reset=True)
    yield handle
    handle.stop()


@pytest.fixture(params=["local", "network"])
def db(request):
    """One session, both transports — the parity fixture."""
    if request.param == "local":
        session = connect()
        yield session
    else:
        handle = request.getfixturevalue("server_handle")
        session = connect(handle.address)
        session._client.request("reset")  # fresh database per test
        yield session
        session.disconnect()


class TestSessionParity:
    """Identical surface and semantics through both transports."""

    def test_is_a_session(self, db):
        assert isinstance(db, Session)

    def test_schema_and_query(self, db):
        db.run(SCHEMA)
        result = db.query("cities select[pop > 100000]")
        assert isinstance(result, SystemResult)
        assert [t.attr("cname") for t in result.value] == ["bb"]

    def test_result_shapes_agree(self, db):
        results = db.run(SCHEMA)
        assert all(isinstance(r, SystemResult) for r in results)
        one = db.run_one("query cities_rep feed count")
        via_query = db.query("cities_rep feed count")
        assert isinstance(one, SystemResult)
        assert isinstance(via_query, SystemResult)
        assert one.value == via_query.value == 2

    def test_every_result_carries_timings(self, db):
        for result in db.run(SCHEMA):
            assert result.timings["total"] >= 0.0
            assert "parse" in result.timings
        model_fired = db.query("cities select[pop > 0]")
        assert set(model_fired.timings) >= {
            "parse", "typecheck", "optimize", "execute", "total",
        }

    def test_metrics_off_by_default(self, db):
        db.run(SCHEMA)
        result = db.query("cities_rep feed count")
        assert result.metrics is None and result.rule_trace is None

    def test_set_tracing_collects_metrics(self, db):
        db.set_tracing(True)
        assert db.tracing
        db.run(SCHEMA)
        result = db.query("cities_rep feed count")
        assert result.metrics is not None
        assert result.metrics.tuples_out("feed") == 2
        assert result.rule_trace is not None

    def test_translated_statement_reported(self, db):
        db.run(SCHEMA)
        result = db.query("cities select[pop > 100000]")
        assert result.translated
        assert "select_gt_btree_range" in result.fired
        assert result.generated_statement().startswith("query ")

    def test_explain_passthrough(self, db):
        db.run(SCHEMA)
        info = db.explain("cities select[pop > 100000]")
        assert info["translated"] is True
        assert info["fired"] == ["select_gt_btree_range"]

    def test_explain_analyze(self, db):
        db.run(SCHEMA)
        info = db.explain("cities select[pop > 100000]", analyze=True)
        assert info["analyzed"] is True
        assert info["rows"] == 1
        assert info["metrics"]["operators"]

    def test_lint_reports(self, db):
        report = db.lint()
        assert report.ok
        assert report.render_text()

    def test_dump(self, db):
        db.run(SCHEMA)
        text = db.dump()
        assert "create cities : rel(city)" in text

    def test_analyze_shorthand(self, db):
        db.run(SCHEMA)
        result = db.analyze("cities_rep")
        assert result.kind == "analyze"
        assert "cities_rep" in result.value

    def test_statement_errors_carry_index_and_phase(self, db):
        with pytest.raises(CatalogError) as info:
            db.run("type t = tuple(<(a, int)>)\nupdate ghost := 1")
        assert isinstance(info.value, StatementError)
        assert info.value.index == 1
        assert info.value.phase in ("typecheck", "execute")
        assert info.value.snippet() is not None

    def test_parse_errors_same_class(self, db):
        with pytest.raises(ParseError):
            db.run_one("query 1 +")

    def test_close_is_idempotent(self, db):
        db.run(SCHEMA)
        db.close()
        db.close()
        assert db.closed

    def test_closed_session_queries_ok_mutations_raise(self, db):
        db.run(SCHEMA)
        db.close()
        assert db.query("cities_rep feed count").value == 2
        with pytest.raises(CatalogError, match="closed"):
            db.run_one(
                'update cities := insert(cities,'
                ' mktuple[<(cname, "x"), (center, pt(3, 3)), (pop, 1)>])'
            )

    def test_context_manager_closes(self, db):
        with db as handle:
            assert handle is db
            handle.run(SCHEMA)
        assert db.closed

    def test_metric_histograms_round_trip(self, db):
        """``search_join.probe_rows`` — the one per-statement histogram —
        must survive the wire codec with its raw observations intact."""
        db.run(SPATIAL_SCHEMA)
        db.set_tracing(True)
        result = db.query("cities states join[center inside region]")
        hist = result.metrics.histograms["search_join.probe_rows"]
        # 4 outer tuples, each matching exactly one state: 4 probes of
        # fan-out 1, identical through both transports.
        assert hist.values == [1.0, 1.0, 1.0, 1.0]
        assert hist.as_dict()["p50"] == 1.0
        assert result.metrics.counters["search_join.probes"] == 4

    def test_explain_analyze_reports_histograms(self, db):
        db.run(SPATIAL_SCHEMA)
        info = db.explain(
            "cities states join[center inside region]", analyze=True
        )
        stats = info["metrics"]["histograms"]["search_join.probe_rows"]
        assert stats["count"] == 4
        assert stats["p50"] == 1.0

    def test_raising_subscriber_does_not_break_execution(self, db):
        db.run(SCHEMA)

        def broken(event):
            raise RuntimeError("listener bug")

        db.subscribe(broken)
        result = db.query("cities_rep feed count")
        assert result.value == 2
        assert db.tracer.subscriber_errors > 0


class TestDSN:
    def test_default_is_relational(self):
        db = connect()
        assert isinstance(db, LocalSession)
        assert "rep" in db.database.objects  # catalog pre-created

    def test_legacy_model_names_positional(self):
        assert connect("relational").system is not None
        model = connect("model")
        with pytest.raises(CatalogError):
            model.system  # no optimizer system behind it

    def test_file_dsn_is_data_dir_sugar(self, tmp_path):
        path = str(tmp_path / "db")
        with connect(f"file:{path}") as db:
            db.run_one("type t = tuple(<(a, int)>)")
            assert db.durable
            assert db.durability.data_dir == path
        with connect(data_dir=path) as again:
            assert "t" in again.dump()

    def test_file_dsn_conflicting_data_dir_rejected(self, tmp_path):
        with pytest.raises(CatalogError, match="conflicting"):
            connect(f"file:{tmp_path}/a", data_dir=f"{tmp_path}/b")

    def test_unknown_dsn_rejected(self):
        with pytest.raises(CatalogError):
            connect("hierarchical")
        with pytest.raises(CatalogError):
            connect("file:")

    def test_network_dsn_rejects_local_only_options(self):
        from repro.optimizer import standard_optimizer

        with pytest.raises(CatalogError, match="network"):
            connect("repro://localhost", optimizer=standard_optimizer())
        with pytest.raises(CatalogError, match="network"):
            connect("repro://localhost", data_dir="/tmp/nope")

    def test_unreachable_server_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            connect("repro://127.0.0.1:1")  # port 1: nothing listens

    def test_network_session_repr(self, server_handle):
        db = connect(server_handle.address)
        assert "repro://" in repr(db)
        db.disconnect()


class TestLocalOnly:
    def test_model_session(self):
        db = connect(model="model")
        db.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)")
        db.run_one("update r := insert(r, mktuple[<(a, 7)>])")
        result = db.query("r select[a > 0]")
        assert isinstance(result, SystemResult)
        assert result.level == "model"
        assert len(result.value.rows) == 1

    def test_model_shapes_agree(self):
        db = connect(model="model")
        results = db.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)")
        assert all(isinstance(r, SystemResult) for r in results)
        assert results[0].kind == "type"
        assert results[1].level == "model"

    def test_model_session_takes_no_optimizer(self):
        from repro.optimizer import standard_optimizer

        with pytest.raises(CatalogError):
            connect(model="model", optimizer=standard_optimizer())

    def test_custom_optimizer(self):
        from repro.optimizer import standard_optimizer

        opt = standard_optimizer()
        db = connect(optimizer=opt)
        assert db.system.optimizer is opt

    def test_trace_callable_subscribes(self):
        events = []
        db = connect(trace=events.append)
        db.run_one("query 1 + 2")
        assert any(e.name == "statement" for e in events)
        assert db.tracing  # a callable also arms collection

    def test_trace_tracer_instance_is_the_bus(self):
        tracer = Tracer()
        db = connect(trace=tracer)
        assert db.tracer is tracer
        assert db.system.tracer is tracer

    def test_dump_restore_round_trip(self):
        db = connect()
        db.run(SCHEMA)
        text = db.dump()
        clone = connect()
        clone.restore(text)
        assert clone.query("cities_rep feed count").value == 2

    def test_repr(self):
        assert "relational" in repr(connect())
        assert "model" in repr(connect(model="model"))

    def test_closed_model_session_contract(self):
        db = connect(model="model")
        db.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)")
        db.run_one("update r := insert(r, mktuple[<(a, 7)>])")
        db.close()
        assert db.query("r select[a > 0]").value.rows
        with pytest.raises(CatalogError, match="closed"):
            db.run_one("update r := insert(r, mktuple[<(a, 8)>])")
