"""The complete Section 4 representation specification, loaded from text.

This is the strongest form of the paper's extensibility claim: the *entire*
representation level — constructors with dependent specs, subtype order,
stream and search operators — is a specification string; only the algebra
(implementation functions, type operators, constructor constraints) is
attached by name.  The resulting system answers the paper's spatial join.
"""

import pytest

from repro.catalog import Database
from repro.core.algebra import SecondOrderAlgebra
from repro.core.constructors import ConstructorSpec
from repro.core.sos import SignatureBuilder
from repro.lang import Interpreter
from repro.models.base import add_base_level, register_base_carriers
from repro.rep import model as repm
from repro.spec import parse_spec

REP_SPEC = """
kinds ORD, STREAM, SREL, BTREE, LSDTREE, RELREP

type constructors
    TUPLE -> STREAM                                stream
    TUPLE -> SREL                                  srel
    TUPLE -> RELREP                                relrep
    tuple: TUPLE x ident x ORD -> BTREE            btree
    tuple: TUPLE x (tuple -> ORD) -> BTREE         btree
    tuple: TUPLE x (tuple -> rect) -> LSDTREE      lsdtree

subtypes
    srel(tuple) < relrep(tuple)
    btree(tuple, attrname, dtype) < relrep(tuple)
    btree(tuple, f) < relrep(tuple)
    lsdtree(tuple, f) < relrep(tuple)

operators
    forall relrep: relrep(tuple) in RELREP.
        relrep -> stream(tuple)                      feed           syntax _ #
    forall stream: stream(tuple) in STREAM.
        stream x (tuple -> bool) -> stream           filter         syntax _ #[ _ ]
        stream -> srel(tuple)                        collect        syntax _ #
        stream -> int                                count          syntax _ #
    forall stream1: stream(tuple1) in STREAM. forall stream2: stream(tuple2) in STREAM.
        stream1 x (tuple1 -> stream2) -> s: STREAM   search_join    syntax _ _ #
    forall btree: btree(tuple, attrname, dtype) in BTREE.
        btree x dtype x dtype -> stream(tuple)       range          syntax _ #[ _, _ ]
        -> btree                                     empty
        btree x tuple ~> btree                       insert
    forall lsdtree: lsdtree(tuple, f) in LSDTREE.
        lsdtree x point -> stream(tuple)             point_search   syntax _ _ #
        -> lsdtree                                   empty
        lsdtree x tuple ~> lsdtree                   insert
    forall ord in ORD.
        -> ord                                       bottom, top
"""

from repro.storage import BOTTOM_KEY, TOP_KEY

IMPLS = {
    "feed": repm._feed_impl,
    "filter": repm._filter_impl,
    "collect": repm._collect_impl,
    "count": repm._count_impl,
    "search_join": repm._search_join_impl,
    "range": repm._range_impl,
    "point_search": repm._point_search_impl,
    "empty": repm._new_structure,
    "insert": repm._insert_struct_impl,
    "bottom": lambda ctx: BOTTOM_KEY,
    "top": lambda ctx: TOP_KEY,
}

TYPE_OPERATORS = {"search_join": repm._search_join_type}

CONSTRUCTOR_SPECS = {
    ("btree", 3): ConstructorSpec(
        "(attrname, dtype) must name a component of the tuple type",
        repm._btree_attr_spec_check,
    )
}


@pytest.fixture()
def interp():
    builder = SignatureBuilder()
    add_base_level(builder)
    parse_spec(
        REP_SPEC,
        builder=builder,
        impls=IMPLS,
        type_operators=TYPE_OPERATORS,
        constructor_specs=CONSTRUCTOR_SPECS,
        level="rep",
    )
    builder.kind_member("int", "ORD")
    builder.kind_member("string", "ORD")
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_base_carriers(algebra)
    repm.register_rep_carriers(algebra)
    return Interpreter(Database(sos, algebra))


@pytest.fixture()
def loaded(interp):
    interp.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
"""
    )
    for i in range(4):
        interp.run_one(
            "update states_rep := insert(states_rep, "
            f'mktuple[<(sname, "s{i}"), (region, region_box({i * 25}, 0, {i * 25 + 25}, 100))>])'
        )
    for i in range(12):
        interp.run_one(
            "update cities_rep := insert(cities_rep, "
            f'mktuple[<(cname, "c{i}"), (center, pt({i * 8 + 2}, 50)), (pop, {i * 100})>])'
        )
    return interp


class TestSpecLoadedRepSystem:
    def test_both_btree_variants_loaded(self, interp):
        assert len(interp.database.sos.type_system.overloads("btree")) == 2

    def test_constructor_spec_applies_to_attr_variant_only(self, interp):
        parser = interp.make_parser()
        interp.run("type t = tuple(<(a, int)>)")
        from repro.errors import TypeFormationError

        with pytest.raises(TypeFormationError):
            interp.database.sos.type_system.check_type(
                parser.parse_type("btree(t, ghost, int)")
            )
        interp.database.sos.type_system.check_type(
            parser.parse_type("btree(t, fun (x: t) x a)")
        )

    def test_feed_filter_count(self, loaded):
        r = loaded.run_one("query cities_rep feed filter[pop >= 500] count")
        assert r.value == 7

    def test_range_with_constants(self, loaded):
        r = loaded.run_one("query cities_rep range[bottom, 300] count")
        assert r.value == 4

    def test_spatial_join_through_text_spec(self, loaded):
        r = loaded.run_one(
            """
query cities_rep feed
      fun (c: city) states_rep (c center) point_search
                    filter[fun (s: state) c center inside s region]
      search_join count
"""
        )
        # 12 cities; the one at x = 50 sits on a shared state boundary and
        # matches both neighbours (boundary counts as inside), hence 13.
        assert r.value == 13
