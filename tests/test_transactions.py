"""Transactional statement execution: rollback, savepoints, atomic programs."""

import pytest

from repro.core.algebra import Relation
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.errors import CatalogError, OptimizationError, StatementError
from repro.storage.io import PageManager
from repro.storage.tidrel import SecondaryIndex, TidRelation
from repro.system import build_relational_system
from repro.system.transactions import (
    Transaction,
    clone_value,
    restore_value,
    statement_transaction,
)
from repro.testing import database_fingerprint

INT = TypeApp("int")

CITY = 'mktuple[<(cname, "{name}"), (center, pt({x}, {y})), (pop, {pop})>]'


def city(name, x, y, pop):
    return CITY.format(name=name, x=x, y=y, pop=pop)


@pytest.fixture()
def session():
    system = build_relational_system()
    system.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""
    )
    for i, pop in enumerate([100, 5000, 20000]):
        system.run_one(f"update cities := insert(cities, {city('c%d' % i, i, i, pop)})")
    return system


class TestCloneRestore:
    def test_list_roundtrip(self):
        original = [1, 2, 3]
        snapshot = clone_value(original)
        original.append(4)
        restore_value(original, snapshot)
        assert original == [1, 2, 3]

    def test_relation_roundtrip(self):
        rel_t = rel_type(tuple_type([("a", INT)]))
        rel = Relation(rel_t, [])
        snapshot = clone_value(rel)
        rel.rows.append("x")
        restore_value(rel, snapshot)
        assert rel.rows == []

    def test_immutables_are_shared(self):
        assert clone_value(42) == 42
        assert clone_value("s") == "s"
        assert clone_value(None) is None

    def test_btree_clone_is_independent(self):
        from repro.storage.btree import BTree

        bt = BTree(key=lambda t: t, pages=PageManager())
        for k in range(50):
            bt.insert(k)
        twin = bt.clone()
        bt.insert(99)
        assert len(bt) == 51
        assert len(twin) == 50
        assert list(twin.scan()) == list(range(50))
        twin.check_invariants()


class TestTransaction:
    def test_commit_keeps_changes(self, session):
        db = session.database
        txn = Transaction(db)
        db.transaction = txn
        try:
            session.interpreter.run_one("create n : int")
        finally:
            db.transaction = None
        txn.commit()
        assert db.has_object("n")
        assert not txn.active

    def test_rollback_restores_catalog_and_values(self, session):
        db = session.database
        before = database_fingerprint(db)
        txn = Transaction(db)
        db.transaction = txn
        try:
            session.interpreter.run_one("type width = int")
            session.interpreter.run_one("create n : int")
            session.run_one(
                f"update cities := insert(cities, {city('x', 9, 9, 123)})"
            )
        finally:
            db.transaction = None
        txn.rollback()
        assert database_fingerprint(db) == before
        assert "width" not in db.aliases
        assert not db.has_object("n")

    def test_savepoint_partial_rollback(self, session):
        db = session.database
        txn = Transaction(db)
        db.transaction = txn
        try:
            session.interpreter.run_one("create a : int")
            sp = txn.savepoint()
            session.interpreter.run_one("create b : int")
            txn.rollback(sp)
        finally:
            db.transaction = None
        assert txn.active  # savepoint rollback keeps the transaction alive
        assert db.has_object("a")
        assert not db.has_object("b")
        txn.commit()
        assert db.has_object("a")

    def test_finished_transaction_refuses_reuse(self, session):
        txn = Transaction(session.database)
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.protect("cities_rep")
        with pytest.raises(RuntimeError):
            txn.rollback()

    def test_foreign_savepoint_rejected(self, session):
        txn = Transaction(session.database)
        other = Transaction(session.database)
        sp = other.savepoint()
        with pytest.raises(RuntimeError):
            txn.rollback(sp)

    def test_rollback_preserves_value_identity_and_aliases(self):
        """Rollback restores the *original* value instances in place, so a
        secondary index keeps pointing at the (restored) heap relation."""
        pages = PageManager()
        heap = TidRelation(pages=pages)
        tids = heap.stream_insert([(i, f"t{i}") for i in range(10)])
        index = SecondaryIndex(heap, key=lambda t: t[0], pages=pages)
        index.build()

        system = build_relational_system()
        db = system.database
        obj = db.create("heap_obj", TypeApp("int"))  # type is irrelevant here
        obj.value = heap
        iobj = db.create("index_obj", TypeApp("int"))
        iobj.value = index

        txn = Transaction(db)
        txn.protect("heap_obj", "index_obj")
        tid = heap.insert((99, "t99"))
        index.insert(tid, (99, "t99"))
        txn.rollback()

        assert db.objects["heap_obj"].value is heap  # same instance
        assert index.relation is heap  # aliasing intact
        assert len(heap) == 10
        assert [t[0] for t in heap.scan()] == list(range(10))
        assert list(index.tids_in_range(99, 99)) == []


class TestStatementAtomicity:
    def test_failed_statement_has_no_effect(self, session):
        db = session.database
        before = database_fingerprint(db)
        with pytest.raises(CatalogError):
            session.run_one("update nosuch := insert(nosuch, 1)")
        assert database_fingerprint(db) == before

    def test_session_continues_after_error(self, session):
        with pytest.raises(StatementError):
            session.run_one("query undefined_object_name")
        r = session.run_one("query cities_rep feed count")
        assert r.value == 3

    def test_program_error_keeps_earlier_statements(self, session):
        db = session.database
        with pytest.raises(StatementError):
            session.run(
                "create tmp2 : rel(city)\nupdate tmp2 := insert(tmp2, 1)"
            )
        # non-atomic program: statement 1 committed, statement 2 rolled back
        assert db.has_object("tmp2")

    def test_untranslatable_update_rolls_back(self, session):
        db = session.database
        session.run_one("create loners : rel(city)")
        before = database_fingerprint(db)
        with pytest.raises(OptimizationError):
            session.run_one(f"update loners := insert(loners, {city('x', 1, 1, 1)})")
        assert database_fingerprint(db) == before


class TestAtomicPrograms:
    def test_atomic_program_commits_all_or_nothing(self, session):
        db = session.database
        before = database_fingerprint(db)
        with pytest.raises(StatementError):
            session.run(
                f"""
update cities := insert(cities, {city('x', 9, 9, 777)})
create extra : int
query undefined_object_name
""",
                atomic=True,
            )
        assert database_fingerprint(db) == before
        assert not db.has_object("extra")

    def test_atomic_program_success(self, session):
        results = session.run(
            f"""
update cities := insert(cities, {city('x', 9, 9, 777)})
update cities := insert(cities, {city('y', 8, 8, 888)})
""",
            atomic=True,
        )
        assert len(results) == 2
        assert session.query("cities_rep feed count").value == 5

    def test_nested_program_transaction_rejected(self, session):
        from repro.system.transactions import program_transaction

        with program_transaction(session.database):
            with pytest.raises(RuntimeError):
                with program_transaction(session.database):
                    pass


class TestStatementErrors:
    def test_wrapped_error_keeps_original_class(self, session):
        with pytest.raises(CatalogError) as info:
            session.run_one("delete nosuch")
        assert isinstance(info.value, StatementError)
        assert info.value.phase == "execute"
        assert info.value.index is None
        assert "nosuch" in info.value.source

    def test_program_error_carries_index_and_source(self, session):
        with pytest.raises(StatementError) as info:
            session.run("query 1 + 1\nquery undefined_object_name\nquery 2")
        err = info.value
        assert err.index == 1
        assert err.snippet() == "query undefined_object_name"
        assert "statement 2" in str(err)

    def test_parse_phase(self, session):
        with pytest.raises(StatementError) as info:
            session.run_one("query ((1 + ")
        assert info.value.phase == "parse"

    def test_typecheck_phase(self, session):
        with pytest.raises(StatementError) as info:
            session.run_one('query 1 + "s"')
        assert info.value.phase == "typecheck"

    def test_optimize_phase(self, session):
        session.run_one("create loners : rel(city)")
        with pytest.raises(StatementError) as info:
            session.run_one(f"update loners := insert(loners, {city('x', 1, 1, 1)})")
        assert info.value.phase == "optimize"

    def test_interpreter_wraps_errors_too(self):
        from repro.system import build_model_interpreter

        interp = build_model_interpreter()
        with pytest.raises(StatementError) as info:
            interp.run("type t = tuple(<(a, int)>)\ncreate r : rel(t)\ndelete gone")
        assert info.value.index == 2
        assert isinstance(info.value, CatalogError)


class TestStatementTransactionHelper:
    def test_commit_on_success(self, session):
        db = session.database
        with statement_transaction(db):
            db.create("fresh", TypeApp("int"))
        assert db.transaction is None
        assert db.has_object("fresh")

    def test_rollback_on_error(self, session):
        db = session.database
        with pytest.raises(ValueError):
            with statement_transaction(db):
                db.create("fresh", TypeApp("int"))
                raise ValueError("boom")
        assert db.transaction is None
        assert not db.has_object("fresh")
