"""Shared fixtures: models, systems, and small datasets."""

from __future__ import annotations

import random

import pytest

from repro.api import connect
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.models.relational import make_relation, relational_model

INT = TypeApp("int")
STRING = TypeApp("string")
BOOL = TypeApp("bool")
POINT = TypeApp("point")
PGON = TypeApp("pgon")


@pytest.fixture(scope="session")
def city_type():
    return tuple_type([("name", STRING), ("pop", INT), ("country", STRING)])


@pytest.fixture(scope="session")
def city_rel_type(city_type):
    return rel_type(city_type)


@pytest.fixture()
def rel_model():
    """A fresh relational model (signature, algebra)."""
    return relational_model()


@pytest.fixture()
def system():
    """A fresh full relational system with the standard optimizer.

    The raw :class:`SOSSystem` (not the :class:`repro.api.Session` facade),
    so tests can poke at ``.optimizer`` and ``.interpreter`` directly.
    """
    return connect().system


@pytest.fixture()
def loaded_system(system):
    """A system with the paper's cities/states schema, representations,
    catalog entries and a small deterministic dataset."""
    system.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
"""
    )
    rng = random.Random(7)
    for i in range(5):
        system.run_one(
            f'update states := insert(states, mktuple[<(sname, "s{i}"), '
            f"(region, region_box({i * 20}, 0, {i * 20 + 20}, 100))>])"
        )
    for i in range(40):
        x = round(rng.uniform(0, 100), 1)
        y = round(rng.uniform(0, 100), 1)
        pop = rng.randrange(10_000)
        system.run_one(
            f'update cities := insert(cities, mktuple[<(cname, "c{i}"), '
            f"(center, pt({x}, {y})), (pop, {pop})>])"
        )
    return system


def sample_cities(city_type, n=6):
    rows = [
        {"name": "Berlin", "pop": 3_500_000, "country": "Germany"},
        {"name": "Paris", "pop": 2_100_000, "country": "France"},
        {"name": "Hagen", "pop": 210_000, "country": "Germany"},
        {"name": "Lyon", "pop": 520_000, "country": "France"},
        {"name": "Zurich", "pop": 400_000, "country": "Switzerland"},
        {"name": "Munich", "pop": 1_500_000, "country": "Germany"},
    ]
    return rows[:n]


@pytest.fixture()
def cities_relation(city_type, city_rel_type):
    return make_relation(city_rel_type, sample_cities(city_type))
