"""The graph model extension (the [ErG91] direction the paper cites)."""

import pytest

from repro.catalog import Database
from repro.errors import ExecutionError, TypeFormationError
from repro.lang import Interpreter
from repro.models.graph import GraphValue, graph_model


@pytest.fixture()
def interp():
    sos, algebra = graph_model()
    return Interpreter(Database(sos, algebra))


PROGRAM = """
type person = tuple(<(name, string), (age, int)>)
type knows = tuple(<(since, int)>)
create social : graph(person, knows)
update social := add_node(social, 1, mktuple[<(name, "ann"), (age, 30)>])
update social := add_node(social, 2, mktuple[<(name, "bob"), (age, 40)>])
update social := add_node(social, 3, mktuple[<(name, "cia"), (age, 25)>])
update social := add_node(social, 4, mktuple[<(name, "dan"), (age, 55)>])
update social := add_edge(social, 1, 2, mktuple[<(since, 2010)>])
update social := add_edge(social, 2, 3, mktuple[<(since, 2015)>])
update social := add_edge(social, 1, 3, mktuple[<(since, 2020)>])
"""


@pytest.fixture()
def social(interp):
    interp.run(PROGRAM)
    return interp


class TestTypeSystem:
    def test_graph_type_well_formed(self, interp):
        interp.run("type n = tuple(<(a, int)>)")
        t = interp.make_parser().parse_type("graph(n, n)")
        interp.database.sos.type_system.check_type(t)

    def test_graph_needs_tuple_arguments(self, interp):
        from repro.core.types import TypeApp

        with pytest.raises(TypeFormationError):
            interp.database.sos.type_system.check_type(
                TypeApp("graph", (TypeApp("int"), TypeApp("int")))
            )


class TestQueries:
    def test_nodes_relation(self, social):
        r = social.run_one("query social nodes")
        assert sorted(t.attr("name") for t in r.value.rows) == [
            "ann",
            "bob",
            "cia",
            "dan",
        ]

    def test_edges_relation(self, social):
        r = social.run_one("query social edges")
        assert sorted(t.attr("since") for t in r.value.rows) == [2010, 2015, 2020]

    def test_succ(self, social):
        r = social.run_one("query social succ[1]")
        assert sorted(t.attr("name") for t in r.value.rows) == ["bob", "cia"]

    def test_pred(self, social):
        r = social.run_one("query social pred[3]")
        assert sorted(t.attr("name") for t in r.value.rows) == ["ann", "bob"]

    def test_reachable(self, social):
        r = social.run_one("query social reachable[2]")
        assert sorted(t.attr("name") for t in r.value.rows) == ["bob", "cia"]

    def test_shortest_path(self, social):
        r = social.run_one("query social shortest_path[1, 3]")
        assert [t.attr("name") for t in r.value.rows] == ["ann", "cia"]

    def test_shortest_path_missing(self, social):
        r = social.run_one("query social shortest_path[3, 1]")
        assert r.value.rows == []

    def test_degree(self, social):
        assert social.run_one("query social degree[3]").value == 2
        assert social.run_one("query social degree[4]").value == 0

    def test_compose_with_select(self, social):
        r = social.run_one("query social nodes select[age > 28]")
        assert sorted(t.attr("name") for t in r.value.rows) == ["ann", "bob", "dan"]

    def test_select_over_succ(self, social):
        r = social.run_one("query social succ[1] select[age > 30]")
        assert [t.attr("name") for t in r.value.rows] == ["bob"]


class TestUpdates:
    def test_edge_endpoints_must_exist(self, social):
        with pytest.raises(ExecutionError):
            social.run_one(
                "update social := add_edge(social, 1, 99, mktuple[<(since, 1)>])"
            )

    def test_graph_carrier(self, social):
        value = social.database.objects["social"].value
        assert isinstance(value, GraphValue)
        assert len(value) == 4
