"""The event bus and metric machinery of :mod:`repro.observe`."""

from __future__ import annotations

import pytest

import json

from repro import observe
from repro.observe import (
    ChromeTraceExporter,
    Event,
    ExecutionMetrics,
    Histogram,
    RuleTrace,
    SpanRecorder,
    Tracer,
)


class TestTracer:
    def test_disabled_bus_emits_nothing(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit("x")  # no subscribers: a no-op, not an error
        with tracer.span("y"):
            pass

    def test_events_reach_subscribers(self):
        tracer = Tracer()
        seen: list[Event] = []
        tracer.subscribe(seen.append)
        assert tracer.enabled
        tracer.emit("tick", value=3.0, extra="payload")
        assert [e.name for e in seen] == ["tick"]
        assert seen[0].kind == "counter"
        assert seen[0].value == 3.0
        assert seen[0].data == {"extra": "payload"}

    def test_unsubscribe(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.unsubscribe(seen.append)
        tracer.emit("tick")
        assert seen == []
        assert not tracer.enabled

    def test_span_emits_begin_end_with_duration(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        with tracer.span("work", tag=1):
            tracer.emit("inner")
        kinds = [(e.name, e.kind) for e in seen]
        assert kinds == [("work", "begin"), ("inner", "counter"), ("work", "end")]
        assert seen[2].value >= 0.0
        assert seen[2].data == {"tag": 1}

    def test_nested_spans_track_depth(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.emit("leaf")
        by_name = {e.name: e.depth for e in seen if e.kind != "end"}
        assert by_name == {"outer": 0, "inner": 1, "leaf": 2}

    def test_subscriber_exception_does_not_propagate(self):
        tracer = Tracer()
        seen = []

        def broken(event):
            raise RuntimeError("listener bug")

        tracer.subscribe(broken)
        tracer.subscribe(seen.append)
        with tracer.span("work"):
            tracer.emit("inner")
        # All events still reached the healthy subscriber.
        assert [e.name for e in seen] == ["work", "inner", "work"]
        assert tracer.subscriber_errors == 3

    def test_subscriber_exception_does_not_kill_execution(self, loaded_system):
        loaded_system.tracer.subscribe(
            lambda e: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        result = loaded_system.query("cities_rep feed count")
        assert result.value == 40
        assert loaded_system.tracer.subscriber_errors > 0

    def test_span_depth_restored_across_exceptions(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError()
        # Both spans closed (depth unwound), and a fresh span starts at 0.
        assert [(e.name, e.kind) for e in seen] == [
            ("outer", "begin"),
            ("inner", "begin"),
            ("inner", "end"),
            ("outer", "end"),
        ]
        tracer.emit("after")
        assert seen[-1].depth == 0

    def test_unsubscribe_during_emit(self):
        tracer = Tracer()
        seen = []

        def one_shot(event):
            seen.append(event.name)
            tracer.unsubscribe(one_shot)

        tracer.subscribe(one_shot)
        tracer.subscribe(lambda e: seen.append(f"late:{e.name}"))
        tracer.emit("first")  # one_shot removes itself mid-delivery...
        tracer.emit("second")
        # ...yet still received 'first', the later subscriber got both,
        # and nothing was miscounted as an error.
        assert seen == ["first", "late:first", "late:second"]
        assert tracer.subscriber_errors == 0

    def test_unsubscribe_unknown_fn_is_a_noop(self):
        tracer = Tracer()
        tracer.unsubscribe(lambda e: None)  # never subscribed: no error

    def test_deliver_dispatches_prebuilt_events(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        event = Event("remote", "begin", depth=3, ts=123.0)
        tracer.deliver(event)
        assert seen == [event]
        assert seen[0].depth == 3 and seen[0].ts == 123.0

    def test_deliver_counts_subscriber_errors(self):
        tracer = Tracer()
        tracer.subscribe(
            lambda e: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        tracer.deliver(Event("x"))
        assert tracer.subscriber_errors == 1


class TestRemoteReplay:
    """The pieces behind cross-wire trace stitching: server-side span
    capture and explicit-timestamp replay (see docs/OBSERVABILITY.md)."""

    def test_span_recorder_captures_json_able_frames(self):
        tracer = Tracer()
        recorder = SpanRecorder()
        tracer.subscribe(recorder)
        with tracer.span("work", tag=1):
            tracer.emit("inner", value=2.0)
        frames = recorder.events
        assert [(f["name"], f["kind"]) for f in frames] == [
            ("work", "begin"), ("inner", "counter"), ("work", "end"),
        ]
        # Relative, monotone timestamps inside the recorder's window.
        ts = [f["t"] for f in frames]
        assert ts == sorted(ts) and ts[0] >= 0.0
        assert recorder.elapsed() >= ts[-1]
        assert frames[1]["depth"] == 1
        json.dumps(frames)  # wire-ready

    def test_exporter_honors_explicit_event_ts(self):
        exporter = ChromeTraceExporter()
        origin = exporter._origin
        exporter(Event("remote", "begin", ts=origin + 0.5))
        exporter(Event("remote", "end", value=0.25, ts=origin + 0.75))
        assert exporter.events[0]["ts"] == pytest.approx(0.5e6)
        assert exporter.events[1]["ts"] == pytest.approx(0.75e6)
        assert exporter.events[1]["args"]["duration_ms"] == 250.0


class TestCollecting:
    def test_disabled_by_default(self):
        assert observe.ENABLED is False
        assert observe.active() is None
        observe.incr("x")  # disarmed: silently dropped

    def test_collecting_arms_and_restores(self):
        with observe.collecting() as metrics:
            assert observe.ENABLED is True
            assert observe.active() is metrics
            observe.incr("x", 2)
        assert observe.ENABLED is False
        assert observe.active() is None
        assert metrics.counters == {"x": 2}

    def test_nested_collection_keeps_sinks_separate(self):
        with observe.collecting() as outer:
            observe.incr("a")
            with observe.collecting() as inner:
                observe.incr("b")
            assert observe.active() is outer
            observe.incr("a")
        assert outer.counters == {"a": 2}
        assert inner.counters == {"b": 1}

    def test_restores_on_exception(self):
        with pytest.raises(ValueError):
            with observe.collecting():
                raise ValueError()
        assert observe.ENABLED is False
        assert observe.active() is None

    def test_out_of_order_exit_does_not_clobber_newer_scope(self):
        # Generators can suspend a collecting scope and finalize it after a
        # newer scope was armed; the stale exit must leave the newer scope
        # active.
        def generator_scope():
            with observe.collecting() as inner:
                yield inner

        gen = generator_scope()
        stale = next(gen)
        with observe.collecting() as fresh:
            gen.close()  # exits the *older* scope while 'fresh' is armed
            assert observe.active() is fresh
            assert observe.ENABLED is True
            observe.incr("x")
        assert fresh.counters == {"x": 1}
        assert stale.counters == {}
        assert observe.ENABLED is False
        assert observe.active() is None

    def test_count_out_and_in_wrappers(self):
        metrics = ExecutionMetrics()
        assert list(metrics.count_out("feed", iter([1, 2, 3]))) == [1, 2, 3]
        assert list(metrics.count_in("filter", iter([1, 2]))) == [1, 2]
        assert metrics.operators == {
            "feed": {"in": 0, "out": 3},
            "filter": {"in": 2, "out": 0},
        }
        assert metrics.tuples_out("feed") == 3
        assert metrics.tuples_out("missing") == 0

    def test_as_dict_shape(self):
        metrics = ExecutionMetrics()
        metrics.incr("btree.node_reads", 4)
        d = metrics.as_dict()
        assert set(d) == {"operators", "counters", "io"}
        assert d["counters"] == {"btree.node_reads": 4}


class TestDisabledOverhead:
    def test_statements_run_clean_without_collection(self, loaded_system):
        # No tracing: results carry timings but no metrics objects, and the
        # global flag stays down for the whole statement.
        result = loaded_system.query("cities_rep feed count")
        assert result.metrics is None
        assert result.rule_trace is None
        assert observe.ENABLED is False
        assert set(result.timings) >= {"parse", "typecheck", "execute", "total"}

    def test_tracing_toggle(self, loaded_system):
        loaded_system.set_tracing(True)
        assert loaded_system.tracing
        traced = loaded_system.query("cities_rep feed count")
        assert traced.metrics is not None
        assert traced.metrics.tuples_out("feed") == 40
        loaded_system.set_tracing(False)
        untraced = loaded_system.query("cities_rep feed count")
        assert untraced.metrics is None


class TestRuleTrace:
    def test_record_and_report(self):
        trace = RuleTrace()
        trace.record_attempt("r1", "no_match")
        trace.record_attempt("r1", "no_match")
        trace.record_attempt("r2", "conditions_failed")
        trace.record_fired("r2", "translate", "before-term", "after-term")
        d = trace.as_dict()
        assert d["attempts"]["r1"] == {"no_match": 2}
        assert d["attempts"]["r2"] == {"conditions_failed": 1, "fired": 1}
        assert d["fired"] == [
            {
                "rule": "r2",
                "step": "translate",
                "before": "before-term",
                "after": "after-term",
            }
        ]

    def test_optimizer_records_trace(self, loaded_system):
        from repro.core.terms import clone_term

        statement = loaded_system.interpreter.make_parser().parse_statement(
            "query cities select[pop >= 5000]"
        )
        tc = loaded_system.database.typechecker
        term = tc.check(statement.expr)
        trace = RuleTrace()
        result = loaded_system.optimizer.optimize(
            tc.check(clone_term(term)), loaded_system.database, trace
        )
        assert result.trace is trace
        assert [f.rule for f in trace.fired] == result.fired
        fired = trace.fired[0]
        assert fired.rule == "select_ge_btree_range"
        assert "select" in fired.before
        assert "range" in fired.after
        # The losing rules were attempted and accounted.
        assert any(
            "no_match" in outcomes or "conditions_failed" in outcomes
            for rule, outcomes in trace.attempts.items()
            if rule != "select_ge_btree_range"
        )


class TestMetricCorrectness:
    """Exact operator/storage counts over a small deterministic dataset."""

    @pytest.fixture()
    def seeded(self, system):
        # 4 cities strictly inside 4 distinct states (20-wide tiles), so the
        # spatial join matches each city exactly once.
        system.run(
            """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
"""
        )
        for i in range(4):
            system.run_one(
                f'update states := insert(states, mktuple[<(sname, "s{i}"), '
                f"(region, region_box({i * 20}, 0, {i * 20 + 20}, 100))>])"
            )
        for i in range(4):
            x = i * 20 + 10  # strictly inside tile i
            system.run_one(
                f'update cities := insert(cities, mktuple[<(cname, "c{i}"), '
                f"(center, pt({x}, 50)), (pop, {1000 * (i + 1)})>])"
            )
        system.set_tracing(True)
        return system

    def test_feed_count_tuple_flow(self, seeded):
        result = seeded.query("cities_rep feed count")
        m = result.metrics
        assert m.tuples_out("feed") == 4
        assert m.tuples_out("count") == 0  # count returns a scalar
        # A single-leaf B-tree scan touches the root page twice (leftmost
        # descent + the leaf walk).
        assert m.counters["btree.node_reads"] == 2

    def test_search_join_exact_node_accesses(self, seeded):
        result = seeded.query("cities states join[center inside region]")
        m = result.metrics
        assert result.fired == ["join_inside_lsdtree"]
        # 4 outer tuples, each probing the LSD-tree once; the tree holds 4
        # states in its single bucket, so each point search reads 1 node.
        assert m.counters["search_join.probes"] == 4
        assert m.counters["lsdtree.node_reads"] == 4
        assert m.tuples_out("point_search") == 4
        assert m.tuples_out("search_join") == 4
        assert m.counters["btree.node_reads"] == 2  # outer feed, single leaf
        assert len(result.value) == 4

    def test_range_search_node_accesses(self, seeded):
        result = seeded.query("cities select[pop >= 3000]")
        m = result.metrics
        assert result.fired == ["select_ge_btree_range"]
        # Single-leaf tree: root-as-leaf descent + the leaf read.  The >=
        # rule is a pure halfrange search — no residual filter operator.
        assert m.counters["btree.node_reads"] == 2
        assert m.tuples_out("range") == 2
        assert set(m.operators) == {"range"}

    def test_io_delta_recorded(self, seeded):
        result = seeded.query("cities_rep feed count")
        assert result.metrics.io["reads"] >= 2
        assert result.metrics.io["writes"] == 0

    def test_tidrel_fetch_counter(self, seeded):
        seeded.run(
            """
create orders_heap : tidrel(city)
update orders_heap := insert(orders_heap, mktuple[<(cname, "zz"), (center, pt(1, 1)), (pop, 7)>])
create orders_idx : sindex(city, pop, int)
update orders_idx := build_index(orders_heap, pop)
"""
        )
        result = seeded.query("orders_idx sindex_exact[7] count")
        assert result.value == 1
        # One matching TID, dereferenced once against the heap.
        assert result.metrics.counters["tidrel.fetches"] == 1


class TestHistogram:
    def test_records_and_reports(self):
        hist = Histogram()
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            hist.record(v)
        assert hist.count == 10
        d = hist.as_dict()
        assert d["min"] == 1.0
        assert d["max"] == 10.0
        assert d["mean"] == pytest.approx(5.5)
        assert d["p50"] == pytest.approx(5.5)
        assert d["p95"] == pytest.approx(9.55)

    def test_percentile_edge_cases(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(50)
        hist.record(7)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(100) == 7.0
        with pytest.raises(ValueError):
            hist.percentile(101)
        assert hist.as_dict()["count"] == 1

    def test_empty_as_dict(self):
        assert Histogram().as_dict() == {"count": 0}

    def test_metrics_record_into_named_histograms(self):
        with observe.collecting() as metrics:
            observe.record("probe.rows", 3)
            observe.record("probe.rows", 5)
        assert metrics.histograms["probe.rows"].count == 2
        d = metrics.as_dict()
        assert d["histograms"]["probe.rows"]["mean"] == pytest.approx(4.0)
        # Disarmed: silently dropped, like incr.
        observe.record("probe.rows", 9)
        assert metrics.histograms["probe.rows"].count == 2

    def test_as_dict_omits_histograms_when_none_recorded(self):
        assert "histograms" not in ExecutionMetrics().as_dict()


class TestChromeTraceExporter:
    def test_span_and_counter_mapping(self):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        tracer.subscribe(exporter)
        with tracer.span("statement", category="query"):
            tracer.emit("rows", value=4.0)
        phases = [(e["name"], e["ph"]) for e in exporter.events]
        assert phases == [
            ("statement", "B"),
            ("rows", "i"),
            ("statement", "E"),
        ]
        begin, instant, end = exporter.events
        assert begin["args"] == {"category": "query"}
        assert instant["s"] == "t"
        assert instant["args"]["value"] == 4.0
        assert end["args"]["duration_ms"] >= 0.0
        assert end["ts"] >= begin["ts"]

    def test_json_document_shape(self):
        tracer = Tracer()
        exporter = ChromeTraceExporter(pid=7, tid=9)
        tracer.subscribe(exporter)
        tracer.emit("tick")
        doc = json.loads(exporter.to_json())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["traceEvents"][0]["pid"] == 7
        assert doc["traceEvents"][0]["tid"] == 9

    def test_write_roundtrip(self, tmp_path):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        tracer.subscribe(exporter)
        with tracer.span("work"):
            pass
        path = tmp_path / "trace.json"
        exporter.write(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_live_payloads_are_flattened(self):
        tracer = Tracer()
        exporter = ChromeTraceExporter()
        tracer.subscribe(exporter)
        metrics = ExecutionMetrics()
        metrics.incr("btree.node_reads", 2)
        tracer.emit("done", metrics=metrics, term=object())
        args = exporter.events[0]["args"]
        assert args["metrics"]["counters"] == {"btree.node_reads": 2}
        assert isinstance(args["term"], str)
        json.dumps(exporter.events)  # everything serializes

    def test_session_trace_export(self, loaded_system, tmp_path):
        exporter = ChromeTraceExporter()
        loaded_system.tracer.subscribe(exporter)
        loaded_system.set_tracing(True)
        loaded_system.query("cities_rep feed count")
        names = {e["name"] for e in exporter.events}
        assert "statement" in names
        path = tmp_path / "session.json"
        exporter.write(str(path))
        assert json.loads(path.read_text())["traceEvents"]
