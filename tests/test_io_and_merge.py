"""Page-manager accounting and signature merging."""

import pytest

from repro.core.sos import SecondOrderSignature
from repro.errors import SpecificationError
from repro.models.relational import relational_model
from repro.rep.model import representation_model
from repro.storage.io import IOStats, PageManager


class TestPageManager:
    def test_allocation_and_counters(self):
        pm = PageManager()
        a = pm.allocate()
        b = pm.allocate()
        assert a != b
        pm.read(a)
        pm.read(a)
        pm.write(b)
        assert pm.stats.reads == 2
        assert pm.stats.writes == 1
        assert pm.stats.total == 3
        assert pm.stats.pages_allocated == 2

    def test_free(self):
        pm = PageManager()
        page = pm.allocate()
        pm.free(page)
        assert pm.stats.pages_allocated == 0

    def test_measure_context(self):
        pm = PageManager()
        page = pm.allocate()
        pm.read(page)
        with pm.measure() as m:
            pm.read(page)
            pm.write(page)
        assert m.delta.reads == 1
        assert m.delta.writes == 1
        # measurement does not disturb the running totals
        assert pm.stats.reads == 2

    def test_snapshot_delta(self):
        stats = IOStats(reads=5, writes=2, pages_allocated=1)
        later = IOStats(reads=9, writes=2, pages_allocated=2)
        delta = later.delta(stats)
        assert (delta.reads, delta.writes, delta.pages_allocated) == (4, 0, 1)

    def test_reset(self):
        stats = IOStats(reads=5)
        stats.reset()
        assert stats.total == 0


class TestSignatureMerge:
    def test_merging_model_and_rep_signatures(self):
        model_sos, _ = relational_model()
        rep_sos, _ = representation_model()
        merged = model_sos.merge(rep_sos)
        # shared hybrid constructors unify; level-specific ones coexist
        assert len(merged.type_system.overloads("tuple")) == 1
        assert merged.type_system.has_constructor("rel")
        assert merged.type_system.has_constructor("btree")
        # operators from both sides are present
        assert merged.is_operator("select")
        assert merged.is_operator("feed")
        # subtypes carried over
        from repro.core.types import Sym, TypeApp, tuple_type

        city = tuple_type([("pop", TypeApp("int"))])
        assert merged.subtypes.is_subtype(
            TypeApp("btree", (city, Sym("pop"), TypeApp("int"))),
            TypeApp("relrep", (city,)),
        )
        # extra kind memberships survive the merge
        assert merged.type_system.has_kind(TypeApp("int"), "ORD")

    def test_conflicting_constructor_rejected(self):
        a = SecondOrderSignature()
        b = SecondOrderSignature()
        from repro.core.constructors import TypeConstructor
        from repro.core.sorts import KindSort

        ka = a.type_system.add_kind("K")
        kb = b.type_system.add_kind("K")
        other = b.type_system.add_kind("OTHER")
        a.type_system.add_constructor(TypeConstructor("c", (KindSort(ka),), ka))
        b.type_system.add_constructor(TypeConstructor("c", (KindSort(other),), kb))
        with pytest.raises(SpecificationError):
            a.merge(b)

    def test_merged_typechecking_works(self):
        model_sos, model_alg = relational_model()
        rep_sos, _ = representation_model()
        merged = model_sos.merge(rep_sos)
        from repro.core.typecheck import TypeChecker
        from repro.core.types import Sym, TypeApp, rel_type, tuple_type
        from repro.core.terms import Apply, Var

        city = tuple_type([("pop", TypeApp("int"))])
        objects = {
            "cities": rel_type(city),
            "cities_rep": TypeApp("btree", (city, Sym("pop"), TypeApp("int"))),
        }
        tc = TypeChecker(merged, object_types=objects.get)
        term = tc.check(Apply("feed", (Var("cities_rep"),)))
        assert term.type == TypeApp("stream", (city,))
