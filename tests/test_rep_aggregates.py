"""Sorting, duplicate elimination and aggregation over streams."""

import pytest

from repro.errors import ExecutionError, NoMatchingOperator


@pytest.fixture()
def session(system):
    system.run(
        """
type sale = tuple(<(item, string), (amount, int)>)
create sales : srel(sale)
"""
    )
    srel = system.database.objects["sales"].value
    from repro.models.relational import make_tuple

    sale_t = system.database.aliases["sale"]
    for item, amount in [
        ("pen", 3),
        ("ink", 9),
        ("pen", 3),
        ("pad", 5),
        ("ink", 1),
    ]:
        srel.append(make_tuple(sale_t, item=item, amount=amount))
    return system


class TestSortAndRdup:
    def test_sortby(self, session):
        r = session.run_one("query sales feed sortby[amount]")
        assert [t.attr("amount") for t in r.value] == [1, 3, 3, 5, 9]

    def test_sortby_string(self, session):
        r = session.run_one("query sales feed sortby[item]")
        assert [t.attr("item") for t in r.value] == ["ink", "ink", "pad", "pen", "pen"]

    def test_sortby_unknown_attr(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one("query sales feed sortby[ghost]")

    def test_rdup_after_sort(self, session):
        r = session.run_one("query sales feed sortby[item] rdup count")
        # (ink,9),(ink,1) differ; only the two (pen,3) collapse
        assert r.value == 4

    def test_rdup_without_sort_only_adjacent(self, session):
        r = session.run_one("query sales feed rdup count")
        assert r.value == 5  # the duplicates are not adjacent in heap order


class TestAggregates:
    def test_min_max_sum(self, session):
        assert session.run_one("query sales feed min_of[amount]").value == 1
        assert session.run_one("query sales feed max_of[amount]").value == 9
        assert session.run_one("query sales feed sum_of[amount]").value == 21

    def test_avg(self, session):
        assert session.run_one("query sales feed avg_of[amount]").value == pytest.approx(4.2)

    def test_aggregate_result_type_is_attr_type(self, session):
        r = session.run_one("query sales feed max_of[item]")
        assert r.value == "pen"
        from repro.core.types import format_type

        assert format_type(r.type) == "string"

    def test_aggregate_composes_with_filters(self, session):
        r = session.run_one('query sales feed filter[item = "ink"] sum_of[amount]')
        assert r.value == 10

    def test_empty_stream_raises(self, session):
        with pytest.raises(ExecutionError):
            session.run_one("query sales feed filter[amount > 100] min_of[amount]")

    def test_unknown_attribute_rejected(self, session):
        with pytest.raises(NoMatchingOperator):
            session.run_one("query sales feed sum_of[ghost]")
