"""The nested relational model (experiment E2, paper Section 2.1)."""

import pytest

from repro.core.algebra import Evaluator, Relation, TupleValue
from repro.core.typecheck import TypeChecker
from repro.core.terms import Apply, ListTerm, Literal, Var
from repro.core.types import (
    ArgList,
    ArgTuple,
    Sym,
    TypeApp,
    format_type,
    rel_type,
    tuple_type,
)
from repro.errors import NoMatchingOperator, TypeFormationError
from repro.models.nested import nested_relational_model, nested_type_system_paper

INT = TypeApp("int")
STRING = TypeApp("string")

AUTHOR = tuple_type([("name", STRING), ("country", STRING)])
AUTHORS_REL = rel_type(AUTHOR)
BOOK = tuple_type(
    [
        ("title", STRING),
        ("authors", AUTHORS_REL),
        ("publisher", STRING),
        ("year", INT),
    ]
)
BOOKS_REL = rel_type(BOOK)


class TestPaperTypeSystem:
    """The verbatim (tuple-less) signature of Section 2.1."""

    def test_books_type_well_formed(self):
        ts = nested_type_system_paper()
        # rel(<(title, string), (authors, rel(<(name, string), (country,
        # string)>)), (publisher, string), (year, int)>)
        authors = TypeApp(
            "rel",
            (
                ArgList(
                    (
                        ArgTuple((Sym("name"), STRING)),
                        ArgTuple((Sym("country"), STRING)),
                    )
                ),
            ),
        )
        books = TypeApp(
            "rel",
            (
                ArgList(
                    (
                        ArgTuple((Sym("title"), STRING)),
                        ArgTuple((Sym("authors"), authors)),
                        ArgTuple((Sym("publisher"), STRING)),
                        ArgTuple((Sym("year"), INT)),
                    )
                ),
            ),
        )
        ts.check_type(books)
        assert ts.kind_of(books).name == "REL"

    def test_attr_must_be_data_or_rel(self):
        ts = nested_type_system_paper()
        bad = TypeApp(
            "rel", (ArgList((ArgTuple((Sym("x"), Sym("not_a_type"))),)),)
        )
        with pytest.raises(TypeFormationError):
            ts.check_type(bad)


@pytest.fixture()
def env():
    sos, algebra = nested_relational_model()
    sos.type_system.check_type(BOOKS_REL)
    author_rows = lambda names: Relation(
        AUTHORS_REL,
        [TupleValue(AUTHOR, (n, c)) for n, c in names],
    )
    books = Relation(
        BOOKS_REL,
        [
            TupleValue(
                BOOK,
                (
                    "SOS",
                    author_rows([("Gueting", "DE")]),
                    "SIGMOD",
                    1993,
                ),
            ),
            TupleValue(
                BOOK,
                (
                    "Gral",
                    author_rows([("Gueting", "DE"), ("Becker", "DE")]),
                    "VLDB",
                    1992,
                ),
            ),
        ],
    )
    tc = TypeChecker(sos, object_types={"books": BOOKS_REL}.get)
    ev = Evaluator(algebra, resolver={"books": books}.get)
    return sos, tc, ev


class TestExecutableModel:
    def test_nested_type_well_formed(self, env):
        sos, *_ = env
        sos.type_system.check_type(BOOKS_REL)

    def test_select_on_nested(self, env):
        _, tc, ev = env
        q = tc.check(
            Apply("select", (Var("books"), Apply(">", (Var("year"), Literal(1992)))))
        )
        assert [t.attr("title") for t in ev.eval(q)] == ["SOS"]

    def test_unnest(self, env):
        _, tc, ev = env
        q = tc.check(Apply("unnest", (Var("books"), Var("authors"))))
        assert format_type(q.type) == (
            "rel(tuple(<(title, string), (name, string), (country, string), "
            "(publisher, string), (year, int)>))"
        )
        rows = ev.eval(q)
        assert len(rows) == 3
        assert sorted({t.attr("name") for t in rows}) == ["Becker", "Gueting"]

    def test_unnest_non_rel_attribute_rejected(self, env):
        _, tc, ev = env
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("unnest", (Var("books"), Var("year"))))

    def test_nest_unnest_roundtrip(self, env):
        _, tc, ev = env
        flat = Apply("unnest", (Var("books"), Var("authors")))
        renested = tc.check(
            Apply(
                "nest",
                (flat, ListTerm((Var("name"), Var("country"))), Var("authors")),
            )
        )
        rows = ev.eval(renested)
        assert len(rows) == 2
        gral = next(t for t in rows if t.attr("title") == "Gral")
        assert len(gral.attr("authors")) == 2

    def test_nest_must_leave_grouping_attrs(self, env):
        _, tc, ev = env
        with pytest.raises(NoMatchingOperator):
            tc.check(
                Apply(
                    "nest",
                    (
                        Var("books"),
                        ListTerm(
                            (Var("title"), Var("authors"), Var("publisher"), Var("year"))
                        ),
                        Var("stuff"),
                    ),
                )
            )
