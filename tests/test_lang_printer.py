"""Concrete-syntax printing and the parse/print round trip (Section 2.3)."""

import pytest

from repro.core.terms import same_term
from repro.core.types import TypeApp, tuple_type
from repro.lang.parser import Parser
from repro.lang.printer import format_concrete
from repro.models.relational import relational_model
from repro.rep.model import representation_model

INT = TypeApp("int")
STRING = TypeApp("string")
PERSON = tuple_type([("name", STRING), ("age", INT)])
CITY = tuple_type([("cname", STRING), ("center", TypeApp("point")), ("pop", INT)])
STATE = tuple_type([("sname", STRING), ("region", TypeApp("pgon"))])


@pytest.fixture()
def rel_ctx():
    sos, _ = relational_model()
    parser = Parser(
        sos,
        aliases={"person": PERSON},
        is_object=lambda n: n in {"persons", "cities"},
    )
    return sos, parser


@pytest.fixture()
def rep_ctx():
    sos, _ = representation_model()
    parser = Parser(
        sos,
        aliases={"city": CITY, "state": STATE},
        is_object=lambda n: n in {"cities_rep", "states_rep"},
    )
    return sos, parser


REL_QUERIES = [
    "persons select[fun (p: person) (p age) > 30]",
    "persons cities join[fun (p: person, q: person) (p age) = (q age)]",
    "<persons, persons> union",
    "insert(persons, persons)",
    'cities_in("Germany")',
    "fun (p: person) ((p age) + 1) * 2",
    "mktuple[<(name, \"x\"), (age, 1)>]",
]

REP_QUERIES = [
    "cities_rep feed",
    "cities_rep feed filter[fun (c: city) (c pop) > 10] count",
    "cities_rep range[bottom, 10000]",
    "(cities_rep feed) fun (c: city) states_rep ((c center)) point_search search_join",
    "cities_rep feed replace[pop, fun (c: city) (c pop) * 2]",
    "cities_rep feed project[<(n, fun (c: city) c cname)>]",
    "(cities_rep feed) (states_rep feed) merge_join[cname, sname]",
    "(cities_rep feed) (states_rep feed) hash_join[cname, sname]",
    "cities_rep feed sortby[pop] rdup head[5] count",
    "cities_rep feed groupby[cname, <(total, fun (g: stream(city)) g sum_of[pop])>]",
    "cities_rep feed min_of[pop]",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", REL_QUERIES)
    def test_relational_roundtrip(self, rel_ctx, text):
        sos, parser = rel_ctx
        term = parser.parse_expression(text)
        printed = format_concrete(term, sos)
        reparsed = parser.parse_expression(printed)
        assert same_term(term, reparsed), printed

    @pytest.mark.parametrize("text", REP_QUERIES)
    def test_rep_roundtrip(self, rep_ctx, text):
        sos, parser = rep_ctx
        term = parser.parse_expression(text)
        printed = format_concrete(term, sos)
        reparsed = parser.parse_expression(printed)
        assert same_term(term, reparsed), printed


class TestReadability:
    def test_select_prints_postfix(self, rel_ctx):
        sos, parser = rel_ctx
        term = parser.parse_expression("persons select[fun (p: person) (p age) > 30]")
        printed = format_concrete(term, sos)
        assert printed.startswith("persons select[")

    def test_infix_comparison(self, rel_ctx):
        sos, parser = rel_ctx
        term = parser.parse_expression("fun (p: person) p age > 30")
        printed = format_concrete(term, sos)
        assert "> 30" in printed

    def test_attribute_access(self, rel_ctx):
        sos, parser = rel_ctx
        term = parser.parse_expression("fun (p: person) p age")
        assert "(p age)" in format_concrete(term, sos)

    def test_feed_postfix(self, rep_ctx):
        sos, parser = rep_ctx
        term = parser.parse_expression("cities_rep feed")
        assert format_concrete(term, sos) == "cities_rep feed"

    def test_range_brackets(self, rep_ctx):
        sos, parser = rep_ctx
        term = parser.parse_expression("cities_rep range[bottom, 10000]")
        assert format_concrete(term, sos) == "cities_rep range[bottom, 10000]"
