"""The textual rule language (Section 5) — the paper's rule, verbatim shape."""

import pytest

from repro.errors import ParseError
from repro.optimizer.engine import Optimizer, OptimizerStep
from repro.optimizer.ruleparser import parse_rule
from repro.optimizer.conditions import CatalogCondition, TypeCondition

PAPER_RULE = """
forall rel1: rel(tuple1) in REL. forall rel2: rel(tuple2) in REL.
forall point: (tuple1 -> point). forall region: (tuple2 -> pgon).
rel1 rel2 join[fun (t1: tuple1, t2: tuple2) (t1 point) inside (t2 region)]
=> rep1 feed
   fun (t1: tuple1) lsd2 (t1 point) point_search
       filter[fun (t2: tuple2) (t1 point) inside (t2 region)]
   search_join
if rep(rel1, rep1) and rep1 : relrep(tuple1)
   and rep(rel2, lsd2) and lsd2 : lsdtree(tuple2, f)
"""


class TestParsing:
    def test_paper_rule_parses(self, system):
        rule = parse_rule(PAPER_RULE, system.database.sos, name="paper_5")
        assert set(rule.variables) == {"rel1", "rel2", "point", "region"}
        assert rule.variables["point"].is_operator_var
        assert rule.variables["rel1"].kind.name == "REL"
        assert len(rule.conditions) == 4
        assert isinstance(rule.conditions[0], CatalogCondition)
        assert isinstance(rule.conditions[1], TypeCondition)
        assert rule.conditions[1].subtype_ok  # relrep test allows subtypes
        assert rule.lhs.op == "join"
        assert rule.rhs.op == "search_join"

    def test_missing_arrow_rejected(self, system):
        with pytest.raises(ParseError):
            parse_rule("forall x in REL. x => ", system.database.sos)
        with pytest.raises(ParseError):
            parse_rule("forall x in REL.\nx select[a > 1]", system.database.sos)

    def test_bad_condition_rejected(self, system):
        with pytest.raises(ParseError):
            parse_rule(
                "forall x in REL.\nx => x if nonsense + 1", system.database.sos
            )

    def test_unbound_rhs_variable_rejected(self, system):
        """A declared variable the RHS uses but nothing binds is a parse
        error, not a latent KeyError when the rule fires."""
        with pytest.raises(ParseError, match="rel2"):
            parse_rule(
                "forall rel1: rel(tuple1) in REL. "
                "forall rel2: rel(tuple2) in REL.\n"
                "rel1 => rel2",
                system.database.sos,
            )

    def test_condition_bound_rhs_variable_accepted(self, system):
        rule = parse_rule(
            "forall rel1: rel(tuple1) in REL.\n"
            "rel1 => rep1 feed\n"
            "if rep(rel1, rep1) and rep1 : relrep(tuple1)",
            system.database.sos,
        )
        assert rule.rhs.op == "feed"


class TestExecution:
    """The textual paper rule behaves exactly like the programmatic one."""

    def test_textual_rule_produces_the_paper_plan(self, loaded_system):
        rule = parse_rule(PAPER_RULE, loaded_system.database.sos, name="paper_5")
        loaded_system.optimizer = Optimizer(
            [OptimizerStep("spatial", [rule], "exhaustive")]
        )
        r = loaded_system.run_one("query cities states join[center inside region]")
        assert r.fired == ["paper_5"]
        from repro.core.terms import format_term

        plan = format_term(r.translated_term)
        assert plan.startswith("search_join(feed(cities_rep)")
        assert "point_search(states_rep, center(t1))" in plan
        assert len(r.value) == 40

    def test_textual_and_programmatic_rules_agree(self, loaded_system):
        from repro.optimizer.standard_rules import spatial_join_rule

        textual = parse_rule(PAPER_RULE, loaded_system.database.sos, name="t")
        programmatic = spatial_join_rule()
        loaded_system.optimizer = Optimizer(
            [OptimizerStep("s", [textual], "exhaustive")]
        )
        r1 = loaded_system.run_one("query cities states join[center inside region]")
        loaded_system.optimizer = Optimizer(
            [OptimizerStep("s", [programmatic], "exhaustive")]
        )
        r2 = loaded_system.run_one("query cities states join[center inside region]")
        a = sorted((t.attr("cname"), t.attr("sname")) for t in r1.value)
        b = sorted((t.attr("cname"), t.attr("sname")) for t in r2.value)
        assert a == b
