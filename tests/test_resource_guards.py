"""Resource guards on evaluation: step budgets and recursion-depth limits."""

import pytest

from repro.core.algebra import ResourceLimits
from repro.errors import ExecutionError, ResourceLimitError, StatementError
from repro.system import build_relational_system
from repro.testing import database_fingerprint


@pytest.fixture()
def system():
    return build_relational_system()


class TestStepBudget:
    def test_budget_exceeded_raises(self, system):
        system.database.set_resource_limits(max_steps=5)
        with pytest.raises(ResourceLimitError):
            system.run_one("query 1 + 2 * 3 + 4 * 5")

    def test_error_class_and_statement_wrapping(self, system):
        system.database.set_resource_limits(max_steps=5)
        with pytest.raises(ResourceLimitError) as info:
            system.run_one("query 1 + 2 * 3 + 4 * 5")
        assert isinstance(info.value, ExecutionError)
        assert isinstance(info.value, StatementError)

    def test_budget_is_per_statement(self, system):
        """Counters reset at each statement boundary — a budget that admits
        one small query admits any number of them in sequence."""
        system.database.set_resource_limits(max_steps=50)
        for _ in range(10):
            assert system.run_one("query 1 + 2 * 3").value == 7

    def test_generous_budget_does_not_interfere(self, system):
        system.database.set_resource_limits(max_steps=1_000_000)
        system.run(
            """
type t = tuple(<(a, int)>)
create r : srel(t)
update r := insert(r, mktuple[<(a, 1)>])
"""
        )
        assert system.query("r feed count").value == 1

    def test_aborted_statement_rolls_back(self, system):
        system.run(
            """
type t = tuple(<(a, int)>)
create r : srel(t)
"""
        )
        before = database_fingerprint(system.database)
        system.database.set_resource_limits(max_steps=3)
        with pytest.raises(ResourceLimitError):
            system.run_one("update r := insert(r, mktuple[<(a, 1)>])")
        system.database.set_resource_limits()
        assert database_fingerprint(system.database) == before


class TestDepthLimit:
    def test_depth_exceeded_raises(self, system):
        system.database.set_resource_limits(max_depth=3)
        with pytest.raises(ResourceLimitError):
            system.run_one("query 1 + (2 + (3 + (4 + (5 + 6))))")

    def test_shallow_terms_pass(self, system):
        system.database.set_resource_limits(max_depth=50)
        assert system.run_one("query 1 + 2").value == 3

    def test_depth_releases_on_unwind(self, system):
        """Depth counts the *current* evaluation stack, not total visits: a
        wide-but-shallow term stays under a small depth limit."""
        system.database.set_resource_limits(max_depth=10)
        wide = ", ".join(f"(a{i}, {i})" for i in range(40))
        result = system.run_one(f"query mktuple[<{wide}>]")
        assert result.value.attr("a39") == 39


class TestConfiguration:
    def test_limits_can_be_cleared(self, system):
        system.database.set_resource_limits(max_steps=1)
        with pytest.raises(ResourceLimitError):
            system.run_one("query 1 + 1")
        system.database.set_resource_limits()
        assert system.run_one("query 1 + 1").value == 2

    def test_limits_object_on_evaluator(self, system):
        system.database.set_resource_limits(max_steps=9, max_depth=7)
        limits = system.database.evaluator.limits
        assert isinstance(limits, ResourceLimits)
        assert limits.max_steps == 9
        assert limits.max_depth == 7
        system.database.set_resource_limits()
        assert system.database.evaluator.limits is None

    def test_unlimited_by_default(self, system):
        assert system.database.evaluator.limits is None
