"""The standalone benchmark harness and its CI regression gate."""

from __future__ import annotations

import json

import pytest

from benchmarks import compare, harness


def _doc(counters, median=1.0, calibration=10.0, name="b"):
    return {
        "schema": 1,
        "meta": {"mode": "smoke", "calibration_ms": calibration},
        "benchmarks": {
            name: {
                "rounds": 3,
                "min_ms": median,
                "median_ms": median,
                "p95_ms": median,
                "counters": dict(counters),
            }
        },
    }


class TestCompareGate:
    def test_identical_runs_pass(self):
        doc = _doc({"rows": 100, "page_reads": 8})
        assert compare.compare(doc, doc) == []

    def test_counter_regression_beyond_threshold_fails(self):
        base = _doc({"page_reads": 10})
        ok = _doc({"page_reads": 12})  # +20% is the limit, not a failure
        assert compare.compare(base, ok) == []
        bad = _doc({"page_reads": 13})  # +30%
        failures = compare.compare(base, bad)
        assert len(failures) == 1
        assert "page_reads" in failures[0]

    def test_counter_improvements_pass(self):
        base = _doc({"page_reads": 100})
        better = _doc({"page_reads": 1})
        assert compare.compare(base, better) == []

    def test_plan_choice_flag_may_not_drop(self):
        base = _doc({"analyzed_picks_index": 1})
        bad = _doc({"analyzed_picks_index": 0})
        failures = compare.compare(base, bad)
        assert failures and "flag regressed" in failures[0]

    def test_ok_flag_may_not_drop(self):
        base = _doc({"eight_beats_one_ok": 1})
        bad = _doc({"eight_beats_one_ok": 0})
        failures = compare.compare(base, bad)
        assert failures and "flag regressed" in failures[0]

    def test_missing_benchmark_or_counter_fails(self):
        base = _doc({"rows": 5})
        gone = {"schema": 1, "meta": {}, "benchmarks": {}}
        assert "missing" in compare.compare(base, gone)[0]
        partial = _doc({})
        assert "disappeared" in compare.compare(base, partial)[0]

    def test_time_gate_normalizes_by_calibration(self):
        base = _doc({}, median=1.0, calibration=10.0)
        # Twice as slow — but on a machine whose busy loop is also twice
        # as slow: same calibration units, no failure.
        slow_host = _doc({}, median=2.0, calibration=20.0)
        assert compare.compare(base, slow_host, check_time=True) == []
        # Twice as slow on an identical machine: a real regression.
        regressed = _doc({}, median=2.0, calibration=10.0)
        failures = compare.compare(base, regressed, check_time=True)
        assert failures and "median_ms" in failures[0]
        # Timings are off the gate by default.
        assert compare.compare(base, regressed) == []

    def test_cli_exit_codes(self, tmp_path):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(_doc({"rows": 10})))
        cur_path.write_text(json.dumps(_doc({"rows": 10})))
        assert compare.main([str(base_path), str(cur_path)]) == 0
        cur_path.write_text(json.dumps(_doc({"rows": 99})))
        assert compare.main([str(base_path), str(cur_path)]) == 1


class TestHarness:
    def test_percentile_interpolation(self):
        assert harness._percentile([1.0], 0.95) == 1.0
        assert harness._percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert harness._percentile([1.0, 2.0], 0.95) == pytest.approx(1.95)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            harness.run(smoke=True, only=["nope"])

    def test_smoke_run_shape(self):
        doc = harness.run(smoke=True, only=["b1_range"])
        assert doc["meta"]["mode"] == "smoke"
        assert doc["meta"]["calibration_ms"] > 0
        entry = doc["benchmarks"]["b1_range"]
        assert entry["rounds"] == 3
        assert entry["min_ms"] <= entry["median_ms"] <= entry["p95_ms"]
        assert entry["counters"]["rows"] > 0
        assert entry["counters"]["page_reads"] > 0
        json.dumps(doc)  # the document is pure JSON

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "BENCH_test.json"
        assert harness.main(["--smoke", "--only", "b1_range", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert "b1_range" in doc["benchmarks"]

    def test_refuses_armed_collection(self):
        from repro import observe

        with observe.collecting():
            with pytest.raises(SystemExit):
                harness.main(["--smoke", "--only", "b1_range", "--out", "-"])

    def test_committed_baseline_matches_current_counters(self):
        """The committed BENCH_core.json counters must describe the code as
        it is — the CI gate diffs fresh runs against it."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        baseline = json.loads((root / "BENCH_core.json").read_text())
        current = harness.run(smoke=True, only=["equijoin_stats"])
        assert (
            baseline["benchmarks"]["equijoin_stats"]["counters"]
            == current["benchmarks"]["equijoin_stats"]["counters"]
        )


class TestDurabilitySuite:
    def test_suite_selection(self):
        with pytest.raises(KeyError):
            harness.run(smoke=True, suite="nope")
        with pytest.raises(SystemExit):
            harness.run(smoke=True, only=["b1_range"], suite="durability")

    def test_durable_insert_counters_are_deterministic(self):
        doc = harness.run(smoke=True, only=["durable_insert"], suite="durability")
        assert doc["meta"]["suite"] == "durability"
        counters = doc["benchmarks"]["durable_insert"]["counters"]
        # 4 setup + 30 row statements, three records each
        assert counters["log_writes"] == 34 * 3
        assert counters["fsyncs"] == 34 + 1  # one per commit + the close
        assert counters["rows"] == 30

    def test_group_commit_batches_fsyncs(self):
        doc = harness.run(smoke=True, only=["group_commit"], suite="durability")
        counters = doc["benchmarks"]["group_commit"]["counters"]
        assert counters["log_writes"] == 34 * 3  # identical log traffic
        assert counters["fsyncs"] == 34 // 8 + 1  # batched + the close

    def test_committed_durability_baseline_matches_current_counters(self):
        """Same contract as the core baseline: the committed
        BENCH_durability.json must describe the code as it is."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        baseline = json.loads((root / "BENCH_durability.json").read_text())
        current = harness.run(smoke=True, only=["recovery"], suite="durability")
        assert (
            baseline["benchmarks"]["recovery"]["counters"]
            == current["benchmarks"]["recovery"]["counters"]
        )
