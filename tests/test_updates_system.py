"""The full Section 6 update session (experiment E10)."""

import pytest

from repro.errors import OptimizationError
from repro.system import build_relational_system


@pytest.fixture()
def session():
    system = build_relational_system()
    system.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""
    )
    return system


def city_literal(name, x, y, pop):
    return (
        f'mktuple[<(cname, "{name}"), (center, pt({x}, {y})), (pop, {pop})>]'
    )


class TestSection6Session:
    def test_statement_levels_match_paper(self, session):
        # H type city / M create cities / R create cities_rep / R update rep
        results = session.run("create c : city")
        assert results[0].level == "hybrid"
        assert session.database.objects["cities"].level == "model"
        assert session.database.objects["cities_rep"].level == "rep"

    def test_hybrid_tuple_object_update(self, session):
        session.run_one("create c : city")
        r = session.run_one(f"update c := {city_literal('Hagen', 5, 5, 210)}")
        assert not r.translated  # hybrid, executed directly

    def test_model_insert_translates_to_structure_insert(self, session):
        session.run_one("create c : city")
        session.run_one(f"update c := {city_literal('Hagen', 5, 5, 210)}")
        r = session.run_one("update cities := insert(cities, c)")
        assert r.translated
        assert r.generated_statement() == "update cities_rep := insert(cities_rep, c)"
        assert len(session.database.objects["cities_rep"].value) == 1

    def test_model_relation_itself_stays_virtual(self, session):
        session.run_one("create c : city")
        session.run_one(f"update c := {city_literal('Hagen', 5, 5, 210)}")
        session.run_one("update cities := insert(cities, c)")
        assert session.database.objects["cities"].value is None

    def test_delete_by_key_range_uses_range_search(self, session):
        for i, pop in enumerate([100, 5000, 20000, 8000]):
            session.run_one(
                f"update cities := insert(cities, {city_literal('c%d' % i, i, i, pop)})"
            )
        r = session.run_one("update cities := delete(cities, pop <= 10000)")
        assert r.fired == ["delete_le_btree_range"]
        generated = r.generated_statement()
        # The paper's plan: victims found by a B-tree halfrange search.
        # (Concrete syntax prints the nullary constant bare so it re-parses.)
        assert "cities_rep range[bottom, 10000]" in generated
        assert "range(cities_rep, bottom(), 10000)" in r.generated_statement(
            concrete=False
        )
        bt = session.database.objects["cities_rep"].value
        assert [t.attr("pop") for t in bt.scan()] == [20000]

    def test_key_update_translates_to_re_insert(self, session):
        # The paper's final example: pop := pop * 1.1 — here * 2 to stay int.
        for i, pop in enumerate([100, 5000, 20000]):
            session.run_one(
                f"update cities := insert(cities, {city_literal('c%d' % i, i, i, pop)})"
            )
        r = session.run_one('update cities := modify(cities, cname = "c0", pop, pop * 2)')
        assert r.fired == ["modify_key_re_insert"]
        assert "re_insert(cities_rep" in r.generated_statement()
        assert "replace[pop" in r.generated_statement()
        assert "replace(s, pop" in r.generated_statement(concrete=False)
        bt = session.database.objects["cities_rep"].value
        assert sorted(t.attr("pop") for t in bt.scan()) == [200, 5000, 20000]
        bt.check_invariants()

    def test_non_key_update_modifies_in_situ(self, session):
        session.run_one(
            f"update cities := insert(cities, {city_literal('old', 1, 1, 7)})"
        )
        r = session.run_one(
            'update cities := modify(cities, pop = 7, cname, "new")'
        )
        assert r.fired == ["modify_in_situ"]
        bt = session.database.objects["cities_rep"].value
        assert [t.attr("cname") for t in bt.scan()] == ["new"]

    def test_bulk_rel_insert(self, session):
        session.run(
            """
create more : rel(city)
create more_rep : btree(city, pop, int)
update rep := insert(rep, more, more_rep)
"""
        )
        for i in range(5):
            session.run_one(
                f"update more := insert(more, {city_literal('m%d' % i, i, i, i * 10)})"
            )
        r = session.run_one("update cities := rel_insert(cities, more)")
        assert r.fired == ["rel_insert_to_rep"]
        assert len(session.database.objects["cities_rep"].value) == 5

    def test_untranslatable_update_raises(self, session):
        session.run_one("create loners : rel(city)")  # not in the rep catalog
        session.run_one("create c : city")
        session.run_one(f"update c := {city_literal('x', 1, 1, 1)}")
        with pytest.raises(OptimizationError):
            session.run_one("update loners := insert(loners, c)")

    def test_catalog_is_an_ordinary_object(self, session):
        cat = session.database.objects["rep"].value
        assert len(cat) == 1
        rows = list(cat.lookup((None, None)))
        assert rows[0][0].name == "cities"
        assert rows[0][1].name == "cities_rep"

    def test_model_query_roundtrip_after_updates(self, session):
        for i, pop in enumerate([100, 5000, 20000]):
            session.run_one(
                f"update cities := insert(cities, {city_literal('c%d' % i, i, i, pop)})"
            )
        r = session.run_one("query cities select[pop >= 5000]")
        assert sorted(t.attr("cname") for t in r.value) == ["c1", "c2"]
