"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind != "EOF"]


class TestTokens:
    def test_names_and_keywords(self):
        assert kinds("query cities select") == [
            ("KEYWORD", "query"),
            ("NAME", "cities"),
            ("NAME", "select"),
        ]

    def test_numbers(self):
        toks = tokenize("42 3.14")
        assert toks[0].kind == "INT" and toks[0].value == 42
        assert toks[1].kind == "REAL" and toks[1].value == 3.14

    def test_negative_literal_after_operator(self):
        toks = tokenize("pop > -5")
        assert toks[2].kind == "INT" and toks[2].value == -5

    def test_minus_as_subtraction_after_value(self):
        toks = tokenize("a - 5")
        assert toks[1].kind == "SYM" and toks[1].text == "-"

    def test_string_literal(self):
        toks = tokenize('"France"')
        assert toks[0].kind == "STRING"
        assert toks[0].value == "France"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b"')[0].value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_multichar_symbols(self):
        texts = [t.text for t in tokenize(":= <= >= != ->") if t.kind == "SYM"]
        assert texts == [":=", "<=", ">=", "!=", "->"]

    def test_comments_skipped(self):
        assert kinds("a -- comment here\nb") == [("NAME", "a"), ("NAME", "b")]

    def test_positions(self):
        toks = tokenize("ab\n cd")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 2)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_underscored_names(self):
        assert kinds("search_join cities_rep")[0] == ("NAME", "search_join")
