"""Edge cases across the stack: shadowing, redefinition, odd-but-legal input."""

import pytest

from repro.errors import CatalogError, NoMatchingOperator, TypeCheckError


class TestShadowing:
    def test_lambda_param_shadows_object(self, loaded_system):
        """A parameter named like an object wins inside the lambda body."""
        r = loaded_system.run_one(
            "query cities_rep feed filter[fun (cities: city) cities pop >= 0] count"
        )
        assert r.value == 40

    def test_nested_lambdas_shadow(self, loaded_system):
        r = loaded_system.run_one(
            "query cities_rep feed "
            "fun (c: city) states_rep feed "
            "filter[fun (c: state) c sname != \"zzz\"] "
            "search_join count"
        )
        # inner c shadows outer c; every city pairs with every state
        assert r.value == 40 * 5

    def test_attribute_named_like_operator_resolves_in_brackets(self, system):
        # an attribute called 'count' — access must still work via a lambda
        system.run(
            """
type odd = tuple(<(count, int)>)
create r : srel(odd)
"""
        )
        from repro.models.relational import make_tuple

        system.database.objects["r"].value.append(
            make_tuple(system.database.aliases["odd"], count=5)
        )
        r = system.run_one("query r feed filter[fun (o: odd) o count > 1]")
        assert len(r.value) == 1


class TestRedefinition:
    def test_type_alias_redefinition_replaces(self, system):
        system.run("type t = tuple(<(a, int)>)")
        system.run("type t = tuple(<(b, string)>)")
        stmt = system.interpreter.make_parser().parse_type("t")
        from repro.core.types import attrs_of

        assert attrs_of(stmt)[0][0] == "b"

    def test_drop_then_recreate(self, system):
        system.run("type t = tuple(<(a, int)>)")
        system.run_one("create r : srel(t)")
        system.run_one("delete r")
        system.run_one("create r : srel(t)")
        assert system.run_one("query r feed count").value == 0

    def test_drop_unknown_object(self, system):
        with pytest.raises(CatalogError):
            system.run_one("delete ghost")


class TestOddButLegal:
    def test_empty_relation_queries(self, system):
        system.run("type t = tuple(<(a, int)>)\ncreate r : srel(t)")
        assert system.run_one("query r feed count").value == 0
        assert system.run_one("query r feed filter[a > 0] count").value == 0
        assert system.run_one("query r feed sortby[a] count").value == 0

    def test_single_attribute_tuple(self, system):
        r = system.run_one("query mktuple[<(only, 1)>]")
        assert r.value.attr("only") == 1

    def test_deeply_nested_arithmetic(self, system):
        r = system.run_one("query ((((1 + 2)) * ((3))) - 4)")
        assert r.value == 5

    def test_unary_chain_of_postfix(self, loaded_system):
        r = loaded_system.run_one(
            "query cities_rep feed collect feed collect feed count"
        )
        assert r.value == 40

    def test_string_with_escapes_roundtrip(self, system):
        r = system.run_one(r'query "a\"b"')
        assert r.value == 'a"b'

    def test_comparison_chains_need_parens(self, system):
        # a < b < c is not chained; it parses as (a < b) < c and fails on
        # bool < int — the typechecker reports it cleanly.
        with pytest.raises(NoMatchingOperator):
            system.run_one("query 1 < 2 < 3")


class TestViewEdgeCases:
    def test_wrong_arity_view_body_rejected(self):
        from repro.system import build_model_interpreter

        interp = build_model_interpreter()
        interp.run("type t = tuple(<(a, int)>)\ncreate v : (-> rel(t))")
        with pytest.raises(TypeCheckError):
            interp.run_one("update v := fun (x: int) x")

    def test_view_of_wrong_result_type_rejected(self):
        from repro.system import build_model_interpreter

        interp = build_model_interpreter()
        interp.run("type t = tuple(<(a, int)>)\ncreate v : (-> rel(t))")
        with pytest.raises(TypeCheckError):
            interp.run_one("update v := fun () 42")
