"""Fuzzing the front end: arbitrary input must fail *cleanly*.

Whatever garbage (or near-miss program) arrives, the lexer/parser/
typechecker must either succeed or raise a library error (:class:`SOSError`)
— never an arbitrary Python exception.  This is the robustness contract of
a front end meant to sit in front of user queries.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SOSError
from repro.lang.lexer import tokenize
from repro.system import build_relational_system

SYSTEM = build_relational_system()
SYSTEM.run(
    """
type city = tuple(<(cname, string), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""
)

# Alphabet biased towards the language's own tokens for deeper penetration.
TOKENS = [
    "query", "update", "create", "type", "delete", "fun", ":=", "=", "<", ">",
    "<=", ">=", "(", ")", "[", "]", "<", ">", ",", "select", "feed", "filter",
    "cities", "cities_rep", "pop", "cname", "1", "2.5", '"x"', "insert",
    "mktuple", "+", "*", "and", "bottom", "range", "count", ":", "->", "rel",
    "tuple", "int", "string",
]


@st.composite
def token_soup(draw):
    parts = draw(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=25))
    return " ".join(parts)


class TestLexer:
    @given(st.text(alphabet=string.printable, max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_tokenize_never_crashes(self, text):
        try:
            tokenize(text)
        except SOSError:
            pass

    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_tokenize_unicode(self, text):
        try:
            tokenize(text)
        except SOSError:
            pass


class TestParserAndSystem:
    @given(token_soup())
    @settings(max_examples=200, deadline=None)
    def test_statement_processing_fails_cleanly(self, soup):
        for prefix in ("query ", ""):
            try:
                SYSTEM.run(prefix + soup)
            except SOSError:
                pass
            except RecursionError:
                pass  # pathological nesting is acceptable to reject this way

    @given(st.text(alphabet=string.printable, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_raw_text_fails_cleanly(self, text):
        try:
            SYSTEM.run(text)
        except SOSError:
            pass


class TestNearMissPrograms:
    @pytest.mark.parametrize(
        "text",
        [
            "query cities select[pop >]",
            "query cities select pop > 1]",
            "query cities select[pop > 1",
            "update cities insert(cities)",
            "create cities",
            "type t tuple(<(a, int)>)",
            "query <cities,> union",
            "query fun () ",
            "query mktuple[<(a, )>]",
            "create x : rel(tuple(<(a, int)>) )extra",
            "query cities_rep range[bottom]",
            "query cities_rep feed feed",
        ],
    )
    def test_specific_near_misses(self, text):
        with pytest.raises(SOSError):
            SYSTEM.run(text)
