"""Concrete syntax parsing (experiment E5, paper Section 2.3).

The central check: the concrete query ``persons select[age > 30]``, after
parsing and elaboration, equals the paper's abstract-syntax term
``select(persons, fun (p: person) >(age(p), 30))``.
"""

import pytest

from repro.core.terms import (
    Apply,
    Call,
    Fun,
    ListTerm,
    Literal,
    TupleTerm,
    Var,
    same_term,
)
from repro.core.typecheck import TypeChecker
from repro.core.types import FunType, TypeApp, rel_type, tuple_type
from repro.errors import ParseError
from repro.lang.parser import (
    CreateStmt,
    DeleteStmt,
    Parser,
    QueryStmt,
    TypeStmt,
    UpdateStmt,
    split_statements,
)
from repro.models.relational import relational_model
from repro.rep.model import representation_model

INT = TypeApp("int")
STRING = TypeApp("string")
PERSON = tuple_type([("name", STRING), ("age", INT)])
PERSONS = rel_type(PERSON)


@pytest.fixture()
def parser():
    sos, _ = relational_model()
    aliases = {"person": PERSON}
    return Parser(sos, aliases=aliases, is_object=lambda n: n in {"persons", "cities"})


@pytest.fixture()
def checking_parser():
    """Parser plus typechecker over the same signature."""
    sos, _ = relational_model()
    aliases = {"person": PERSON}
    parser = Parser(sos, aliases=aliases, is_object=lambda n: n == "persons")
    tc = TypeChecker(sos, object_types={"persons": PERSONS}.get)
    return parser, tc


class TestStatements:
    def test_type_statement(self, parser):
        stmt = parser.parse_statement(
            "type city = tuple(<(name, string), (pop, int)>)"
        )
        assert isinstance(stmt, TypeStmt)
        assert stmt.type == tuple_type([("name", STRING), ("pop", INT)])

    def test_alias_substitution(self, parser):
        stmt = parser.parse_statement("create persons : rel(person)")
        assert isinstance(stmt, CreateStmt)
        assert stmt.type == PERSONS

    def test_function_type(self, parser):
        stmt = parser.parse_statement("create v : (-> rel(person))")
        assert stmt.type == FunType((), PERSONS)

    def test_parameterized_function_type(self, parser):
        stmt = parser.parse_statement("create v : (string -> rel(person))")
        assert stmt.type == FunType((STRING,), PERSONS)

    def test_update_statement(self, parser):
        stmt = parser.parse_statement("update persons := persons")
        assert isinstance(stmt, UpdateStmt)
        assert same_term(stmt.expr, Var("persons"))

    def test_delete_statement(self, parser):
        stmt = parser.parse_statement("delete persons")
        assert isinstance(stmt, DeleteStmt)

    def test_query_statement(self, parser):
        stmt = parser.parse_statement("query persons")
        assert isinstance(stmt, QueryStmt)

    def test_unknown_type_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_statement("create x : nonsense_type")

    def test_trailing_garbage_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_statement("delete persons extra")


class TestSplitStatements:
    def test_indented_continuations(self):
        chunks = split_statements(
            "query persons\n      select[age > 30]\ncreate x : rel(person)"
        )
        assert len(chunks) == 2
        assert "select" in chunks[0]

    def test_comments_and_blanks_skipped(self):
        chunks = split_statements("-- intro\n\nquery persons\n")
        assert len(chunks) == 1

    def test_leading_junk_rejected(self):
        with pytest.raises(ParseError):
            split_statements("select foo")


class TestConcreteSyntax:
    def test_paper_example_selection(self, parser):
        # persons select[age > 30]
        expr = parser.parse_expression("persons select[age > 30]")
        expected = Apply(
            "select", (Var("persons"), Apply(">", (Var("age"), Literal(30))))
        )
        assert same_term(expr, expected)

    def test_explicit_lambda(self, parser):
        expr = parser.parse_expression("persons select[fun (p: person) p age > 30]")
        expected = Apply(
            "select",
            (
                Var("persons"),
                Fun(
                    (("p", PERSON),),
                    Apply(">", (Apply("age", (Var("p"),)), Literal(30))),
                ),
            ),
        )
        assert same_term(expr, expected)

    def test_attribute_postfix(self, parser):
        # p age  ==  age(p) given p is a lambda parameter
        expr = parser.parse_expression("fun (p: person) p age")
        assert same_term(expr, Fun((("p", PERSON),), Apply("age", (Var("p"),))))

    def test_join_two_preceding_operands(self, parser):
        expr = parser.parse_expression("cities persons join[pop > age]")
        assert isinstance(expr, Apply) and expr.op == "join"
        assert same_term(expr.args[0], Var("cities"))
        assert same_term(expr.args[1], Var("persons"))

    def test_union_list_operand(self, parser):
        expr = parser.parse_expression("<persons, persons> union")
        assert isinstance(expr, Apply) and expr.op == "union"
        assert isinstance(expr.args[0], ListTerm)

    def test_prefix_default_syntax(self, parser):
        expr = parser.parse_expression("insert(persons, persons)")
        assert same_term(expr, Apply("insert", (Var("persons"), Var("persons"))))

    def test_infix_precedence(self, parser):
        expr = parser.parse_expression("fun (p: person) p age + 1 > 2 * 3")
        body = expr.body
        assert body.op == ">"
        assert body.args[0].op == "+"
        assert body.args[1].op == "*"

    def test_and_or_precedence(self, parser):
        expr = parser.parse_expression('fun (p: person) p age > 30 and p name = "x"')
        assert expr.body.op == "and"

    def test_parenthesized_grouping(self, parser):
        expr = parser.parse_expression("fun (p: person) (p age + 1) * 2")
        assert expr.body.op == "*"
        assert expr.body.args[0].op == "+"

    def test_call_requires_adjacency(self, parser):
        expr = parser.parse_expression('cities_in("Germany")')
        assert isinstance(expr, Call)
        assert same_term(expr.fn, Var("cities_in"))

    def test_nullary_call(self, parser):
        expr = parser.parse_expression("french_cities()")
        assert isinstance(expr, Call) and expr.args == ()

    def test_dangling_operands_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_expression("persons cities")

    def test_missing_bracket_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_expression("persons select[age > 30")


class TestElaborationEquivalence:
    """E5 proper: concrete shorthand == abstract syntax after typecheck."""

    def test_shorthand_equals_explicit(self, checking_parser):
        parser, tc = checking_parser
        shorthand = tc.check(parser.parse_expression("persons select[age > 30]"))
        explicit = tc.check(
            parser.parse_expression("persons select[fun (p: person) p age > 30]")
        )
        abstract = tc.check(
            Apply(
                "select",
                (
                    Var("persons"),
                    Fun(
                        (("p", PERSON),),
                        Apply(">", (Apply("age", (Var("p"),)), Literal(30))),
                    ),
                ),
            )
        )
        assert same_term(shorthand, explicit)
        assert same_term(shorthand, abstract)
        assert shorthand.type == PERSONS


class TestRepLevelSyntax:
    """Section 4's concrete syntax parses against the rep signature."""

    @pytest.fixture()
    def rep_parser(self):
        sos, _ = representation_model()
        city = tuple_type([("cname", STRING), ("center", TypeApp("point")), ("pop", INT)])
        state = tuple_type([("sname", STRING), ("region", TypeApp("pgon"))])
        aliases = {"city": city, "state": state}
        objects = {"cities_rep", "states_rep"}
        return Parser(sos, aliases=aliases, is_object=objects.__contains__)

    def test_feed_postfix(self, rep_parser):
        expr = rep_parser.parse_expression("cities_rep feed")
        assert same_term(expr, Apply("feed", (Var("cities_rep"),)))

    def test_search_join_pipeline(self, rep_parser):
        text = (
            "cities_rep feed "
            "fun (c: city) states_rep feed "
            "filter[fun (s: state) c center inside s region] "
            "search_join"
        )
        expr = rep_parser.parse_expression(text)
        assert expr.op == "search_join"
        assert expr.args[0].op == "feed"
        inner = expr.args[1]
        assert isinstance(inner, Fun)
        assert inner.body.op == "filter"

    def test_point_search_two_operands(self, rep_parser):
        expr = rep_parser.parse_expression(
            "fun (c: city) states_rep (c center) point_search"
        )
        body = expr.body
        assert body.op == "point_search"
        assert same_term(body.args[0], Var("states_rep"))
        assert body.args[1].op == "center"

    def test_replace_two_bracket_args(self, rep_parser):
        expr = rep_parser.parse_expression(
            "cities_rep feed replace[pop, fun (c: city) c pop * 2]"
        )
        assert expr.op == "replace"
        assert len(expr.args) == 3

    def test_range_brackets(self, rep_parser):
        expr = rep_parser.parse_expression("cities_rep range[bottom, 10000]")
        assert expr.op == "range"
        assert same_term(expr.args[1], Var("bottom"))

    def test_project_pairs(self, rep_parser):
        expr = rep_parser.parse_expression(
            "cities_rep feed project[<(name2, cname), (kpop, fun (c: city) c pop div 1000)>]"
        )
        assert expr.op == "project"
        pairs = expr.args[1]
        assert isinstance(pairs, ListTerm)
        assert isinstance(pairs.items[0], TupleTerm)
