"""Second-order algebra: values, carriers, evaluation (paper Def. 3.4)."""

import pytest

from repro.core.algebra import Closure, Evaluator, Stream, TupleValue
from repro.core.terms import Apply, Fun, ListTerm, Literal, TupleTerm, Var
from repro.core.typecheck import TypeChecker
from repro.core.types import FunType, ProductType, TypeApp, rel_type, tuple_type
from repro.errors import ExecutionError, UpdateError
from repro.models.relational import make_relation, make_tuple, relational_model

INT = TypeApp("int")
STRING = TypeApp("string")
PERSON = tuple_type([("name", STRING), ("age", INT)])
PERSONS = rel_type(PERSON)


@pytest.fixture()
def model():
    return relational_model()


@pytest.fixture()
def setup(model):
    sos, algebra = model
    persons = make_relation(
        PERSONS,
        [
            {"name": "ann", "age": 25},
            {"name": "bob", "age": 40},
            {"name": "cia", "age": 35},
        ],
    )
    tc = TypeChecker(sos, object_types={"persons": PERSONS}.get)
    ev = Evaluator(algebra, resolver={"persons": persons}.get)
    return sos, algebra, tc, ev, persons


class TestTupleValue:
    def test_attr_access(self):
        t = make_tuple(PERSON, name="ann", age=25)
        assert t.attr("name") == "ann"
        assert t.attr("age") == 25

    def test_missing_attr_raises(self):
        t = make_tuple(PERSON, name="ann", age=25)
        with pytest.raises(ExecutionError):
            t.attr("salary")

    def test_with_attr_is_a_copy(self):
        t = make_tuple(PERSON, name="ann", age=25)
        t2 = t.with_attr("age", 26)
        assert t.attr("age") == 25
        assert t2.attr("age") == 26

    def test_equality_and_hash(self):
        a = make_tuple(PERSON, name="ann", age=25)
        b = make_tuple(PERSON, name="ann", age=25)
        assert a == b
        assert hash(a) == hash(b)

    def test_concat(self):
        city = tuple_type([("cname", STRING)])
        out = tuple_type([("name", STRING), ("age", INT), ("cname", STRING)])
        t = make_tuple(PERSON, name="ann", age=25).concat(
            make_tuple(city, cname="Hagen"), out
        )
        assert t.attr("cname") == "Hagen"
        assert t.attr("age") == 25


class TestMakeHelpers:
    def test_make_tuple_missing_attr(self):
        with pytest.raises(ExecutionError):
            make_tuple(PERSON, name="ann")

    def test_make_tuple_extra_attr(self):
        with pytest.raises(ExecutionError):
            make_tuple(PERSON, name="ann", age=1, x=2)


class TestStream:
    def test_one_shot(self):
        s = Stream(PERSON, iter([1, 2, 3]))
        assert list(s) == [1, 2, 3]
        with pytest.raises(ExecutionError):
            list(s)

    def test_materialize(self):
        assert Stream(PERSON, iter([1])).materialize() == [1]


class TestCarriers:
    def test_atomic_checks(self, model):
        _, algebra = model
        assert algebra.check_value(1, INT)
        assert not algebra.check_value(True, INT)
        assert not algebra.check_value("x", INT)
        assert algebra.check_value(1.5, TypeApp("real"))
        assert algebra.check_value(True, TypeApp("bool"))

    def test_tuple_carrier(self, model):
        _, algebra = model
        good = make_tuple(PERSON, name="ann", age=25)
        assert algebra.check_value(good, PERSON)
        bad = TupleValue(PERSON, ("ann", "not-an-int"))
        assert not algebra.check_value(bad, PERSON)

    def test_rel_carrier(self, model):
        _, algebra = model
        rel = make_relation(PERSONS, [{"name": "a", "age": 1}])
        assert algebra.check_value(rel, PERSONS)
        assert not algebra.check_value(rel, rel_type(tuple_type([("x", INT)])))

    def test_function_carrier(self, model):
        _, algebra = model
        assert algebra.check_value(lambda x: x, FunType((INT,), INT))

    def test_product_carrier(self, model):
        _, algebra = model
        assert algebra.check_value((1, "a"), ProductType((INT, STRING)))
        assert not algebra.check_value((1,), ProductType((INT, STRING)))

    def test_require_value_raises(self, model):
        _, algebra = model
        with pytest.raises(ExecutionError):
            algebra.require_value("nope", INT)


class TestEvaluation:
    def test_select_pipeline(self, setup):
        sos, algebra, tc, ev, persons = setup
        q = tc.check(
            Apply(
                "select",
                (Var("persons"), Apply(">", (Var("age"), Literal(30)))),
            )
        )
        result = ev.eval(q)
        assert sorted(t.attr("name") for t in result) == ["bob", "cia"]

    def test_closure_captures_environment(self, setup):
        sos, algebra, tc, ev, persons = setup
        fun = tc.check(
            Fun(
                (("lim", INT),),
                Apply(
                    "select",
                    (Var("persons"), Apply(">", (Var("age"), Var("lim")))),
                ),
            )
        )
        closure = ev.eval(fun)
        assert isinstance(closure, Closure)
        assert len(closure(30)) == 2
        assert len(closure(0)) == 3

    def test_closure_arity_checked(self, setup):
        *_, tc, ev, _ = setup
        closure = ev.eval(tc.check(Fun((("x", INT),), Var("x"))))
        with pytest.raises(ExecutionError):
            closure(1, 2)

    def test_unbound_variable(self, setup):
        *_, ev, _ = setup
        with pytest.raises(ExecutionError):
            ev.eval(Var("ghost"))

    def test_unchecked_apply_rejected(self, setup):
        *_, ev, _ = setup
        with pytest.raises(ExecutionError):
            ev.eval(Apply("select", (Var("persons"), Literal(1))))

    def test_update_outside_update_statement_rejected(self, setup):
        sos, algebra, tc, ev, persons = setup
        term = tc.check(
            Apply(
                "insert",
                (
                    Var("persons"),
                    Apply(
                        "mktuple",
                        (ListTerm((TupleTerm((Var("name"), Literal("dan"))), TupleTerm((Var("age"), Literal(20))))),),
                    ),
                ),
            )
        )
        with pytest.raises(UpdateError):
            ev.eval(term)  # allow_update defaults to False
        # and with permission it works
        out = ev.eval(term, allow_update=True)
        assert len(out) == 4

    def test_list_and_tuple_terms_evaluate(self, setup):
        *_, ev, _ = setup
        assert ev.eval(ListTerm((Literal(1), Literal(2)))) == [1, 2]
        assert ev.eval(TupleTerm((Literal(1), Literal("a")))) == (1, "a")
