"""The command-line front end (python -m repro)."""

import subprocess
import sys
import textwrap

import pytest


def run_cli(args, stdin=""):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=60,
    )


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "program.sos"
    path.write_text(
        textwrap.dedent(
            """
            type city = tuple(<(cname, string), (pop, int)>)
            create cities : rel(city)
            create cities_rep : btree(city, pop, int)
            update rep := insert(rep, cities, cities_rep)
            update cities := insert(cities, mktuple[<(cname, "Berlin"), (pop, 3500000)>])
            query cities select[pop >= 1000000]
            """
        )
    )
    return path


class TestFileExecution:
    def test_program_runs_and_translates(self, program_file):
        result = run_cli([str(program_file)])
        assert result.returncode == 0, result.stderr
        assert "=> update cities_rep := insert(cities_rep" in result.stdout
        assert "Berlin" in result.stdout
        assert "(1 row(s))" in result.stdout

    def test_model_mode(self, tmp_path):
        path = tmp_path / "m.sos"
        path.write_text(
            "type t = tuple(<(a, int)>)\n"
            "create r : rel(t)\n"
            "update r := insert(r, mktuple[<(a, 7)>])\n"
            "query r select[a = 7]\n"
        )
        result = run_cli(["--model", str(path)])
        assert result.returncode == 0, result.stderr
        assert "=>" not in result.stdout  # no translation at model level
        assert "(1 row(s))" in result.stdout

    def test_error_reported(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text("query nonsense select[x > 1]\n")
        result = run_cli([str(path)])
        assert result.returncode == 1
        assert "error:" in result.stderr


class TestRepl:
    def test_query_and_quit(self):
        result = run_cli(["--model"], stdin="query 1 + 2 * 3\n\n\\q\n")
        assert result.returncode == 0
        assert "7" in result.stdout

    def test_multiline_statement(self):
        stdin = (
            "type t = tuple(<(a, int)>)\n"
            "create r : rel(t)\n"
            "query r\n"
            "   select[a > 0]\n"
            "\n"
            "\\q\n"
        )
        result = run_cli(["--model"], stdin=stdin)
        assert result.returncode == 0
        assert "(0 row(s))" in result.stdout

    def test_objects_command(self):
        stdin = "type t = tuple(<(a, int)>)\ncreate r : rel(t)\n\n\\objects\n\\q\n"
        result = run_cli(["--model"], stdin=stdin)
        assert "r : rel" in result.stdout

    def test_error_does_not_kill_repl(self):
        stdin = "query ghost\n\nquery 1 + 1\n\n\\q\n"
        result = run_cli(["--model"], stdin=stdin)
        assert "error:" in result.stdout
        assert "2" in result.stdout
