"""The command-line front end (python -m repro)."""

import subprocess
import sys
import textwrap

import pytest


def run_cli(args, stdin=""):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=60,
    )


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "program.sos"
    path.write_text(
        textwrap.dedent(
            """
            type city = tuple(<(cname, string), (pop, int)>)
            create cities : rel(city)
            create cities_rep : btree(city, pop, int)
            update rep := insert(rep, cities, cities_rep)
            update cities := insert(cities, mktuple[<(cname, "Berlin"), (pop, 3500000)>])
            query cities select[pop >= 1000000]
            """
        )
    )
    return path


class TestFileExecution:
    def test_program_runs_and_translates(self, program_file):
        result = run_cli([str(program_file)])
        assert result.returncode == 0, result.stderr
        assert "=> update cities_rep := insert(cities_rep" in result.stdout
        assert "Berlin" in result.stdout
        assert "(1 row(s))" in result.stdout

    def test_model_mode(self, tmp_path):
        path = tmp_path / "m.sos"
        path.write_text(
            "type t = tuple(<(a, int)>)\n"
            "create r : rel(t)\n"
            "update r := insert(r, mktuple[<(a, 7)>])\n"
            "query r select[a = 7]\n"
        )
        result = run_cli(["--model", str(path)])
        assert result.returncode == 0, result.stderr
        assert "=>" not in result.stdout  # no translation at model level
        assert "(1 row(s))" in result.stdout

    def test_error_reported(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text("query nonsense select[x > 1]\n")
        result = run_cli([str(path)])
        assert result.returncode == 1
        assert "error:" in result.stderr

    def test_error_carries_statement_index_and_snippet(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text(
            "type t = tuple(<(a, int)>)\n"
            "create r : rel(t)\n"
            "update ghost := insert(ghost, mktuple[<(a, 1)>])\n"
        )
        result = run_cli(["--model", str(path)])
        assert result.returncode == 1
        assert "statement 3" in result.stderr
        assert "in: update ghost := insert(ghost, mktuple[<(a, 1)>])" in result.stderr

    def test_error_phase_reported(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text('query 1 + "s"\n')
        result = run_cli(["--model", str(path)])
        assert result.returncode == 1
        assert "(typecheck)" in result.stderr

    def test_statements_before_error_keep_their_effect(self, tmp_path):
        """Per-statement atomicity: the dump written after a clean run of
        the same prefix equals what the failed run left behind."""
        path = tmp_path / "partial.sos"
        path.write_text(
            "type t = tuple(<(a, int)>)\n"
            "create r : srel(t)\n"
            "update r := insert(r, mktuple[<(a, 1)>])\n"
        )
        dump = tmp_path / "state.sos"
        result = run_cli(["--dump", str(dump), str(path)])
        assert result.returncode == 0, result.stderr
        assert "insert" in dump.read_text()

    def test_max_steps_flag(self, tmp_path):
        path = tmp_path / "p.sos"
        path.write_text("query 1 + 2 * 3 + 4 * 5\n")
        result = run_cli(["--model", "--max-steps", "3", str(path)])
        assert result.returncode == 1
        assert "step budget" in result.stderr
        result = run_cli(["--model", "--max-steps", "100000", str(path)])
        assert result.returncode == 0

    def test_max_depth_flag(self, tmp_path):
        path = tmp_path / "p.sos"
        path.write_text("query 1 + (2 + (3 + (4 + 5)))\n")
        result = run_cli(["--model", "--max-depth", "2", str(path)])
        assert result.returncode == 1
        assert "recursion-depth" in result.stderr

    def test_bad_max_steps_value(self, tmp_path):
        path = tmp_path / "p.sos"
        path.write_text("query 1\n")
        result = run_cli(["--max-steps", "many", str(path)])
        assert result.returncode == 2


class TestRepl:
    def test_query_and_quit(self):
        result = run_cli(["--model"], stdin="query 1 + 2 * 3\n\n\\q\n")
        assert result.returncode == 0
        assert "7" in result.stdout

    def test_multiline_statement(self):
        stdin = (
            "type t = tuple(<(a, int)>)\n"
            "create r : rel(t)\n"
            "query r\n"
            "   select[a > 0]\n"
            "\n"
            "\\q\n"
        )
        result = run_cli(["--model"], stdin=stdin)
        assert result.returncode == 0
        assert "(0 row(s))" in result.stdout

    def test_objects_command(self):
        stdin = "type t = tuple(<(a, int)>)\ncreate r : rel(t)\n\n\\objects\n\\q\n"
        result = run_cli(["--model"], stdin=stdin)
        assert "r : rel" in result.stdout

    def test_error_does_not_kill_repl(self):
        stdin = "query ghost\n\nquery 1 + 1\n\n\\q\n"
        result = run_cli(["--model"], stdin=stdin)
        assert "error:" in result.stdout
        assert "2" in result.stdout


class TestStatsAndTraces:
    STDIN_SCHEMA = (
        "type t = tuple(<(a, int)>)\n"
        "create r : rel(t)\n"
        "create r_rep : btree(t, a, int)\n"
        "update rep := insert(rep, r, r_rep)\n"
        "update r := insert(r, mktuple[<(a, 7)>])\n"
        "update r := insert(r, mktuple[<(a, 9)>])\n"
        "\n"
    )

    def test_analyze_statement_reports_summary(self, tmp_path):
        path = tmp_path / "p.sos"
        path.write_text(self.STDIN_SCHEMA + "analyze r\n")
        result = run_cli([str(path)])
        assert result.returncode == 0, result.stderr
        assert "analyzed r_rep: 2 row(s)" in result.stdout

    def test_stats_command(self):
        stdin = self.STDIN_SCHEMA + "analyze r\n\n\\stats r\n\\q\n"
        result = run_cli([], stdin=stdin)
        assert result.returncode == 0, result.stderr
        assert "r_rep: 2 row(s)" in result.stdout
        assert "a [key]: distinct=2 min=7 max=9" in result.stdout

    def test_stats_before_analyze_hints(self):
        stdin = self.STDIN_SCHEMA + "\\stats r\n\\q\n"
        result = run_cli([], stdin=stdin)
        assert "no statistics for r (run: analyze r)" in result.stdout

    def test_trace_json_written_for_file_run(self, tmp_path, program_file):
        import json

        trace = tmp_path / "trace.json"
        result = run_cli(["--trace-json", str(trace), str(program_file)])
        assert result.returncode == 0, result.stderr
        assert f"trace written to {trace}" in result.stdout
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "statement" in names
        assert {e["ph"] for e in doc["traceEvents"]} <= {"B", "E", "i"}

    def test_trace_json_written_on_repl_quit(self, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        result = run_cli(
            ["--trace-json", str(trace)], stdin="query 1 + 2\n\n\\q\n"
        )
        assert result.returncode == 0, result.stderr
        assert json.loads(trace.read_text())["traceEvents"]

    def test_trace_json_flag_needs_value(self):
        result = run_cli(["--trace-json"])
        assert result.returncode == 2

    def test_explain_reports_estimate_basis(self):
        stdin = (
            self.STDIN_SCHEMA
            + "analyze r\n\n\\explain r select[a >= 8]\n\\q\n"
        )
        result = run_cli([], stdin=stdin)
        assert result.returncode == 0, result.stderr
        assert "est:" in result.stdout
        assert "stats_hit=" in result.stdout

    def test_explain_analyze_reports_cardinality(self):
        stdin = (
            self.STDIN_SCHEMA
            + "analyze r\n\n\\explain+ r select[a >= 8]\n\\q\n"
        )
        result = run_cli([], stdin=stdin)
        assert result.returncode == 0, result.stderr
        assert "card:" in result.stdout
        assert "q=" in result.stdout


class TestDurableMode:
    def test_file_run_persists_and_reopens(self, tmp_path, program_file):
        data_dir = tmp_path / "db"
        first = run_cli(["--data-dir", str(data_dir), str(program_file)])
        assert first.returncode == 0, first.stderr
        assert f"-- durable mode: {data_dir} (epoch 0, 0 statement(s) replayed)" in first.stdout
        # reopen: the program's five mutating statements replay, the
        # query (not logged) does not
        again = tmp_path / "again.sos"
        again.write_text("query cities select[pop >= 1000000]\n")
        second = run_cli(["--data-dir", str(data_dir), str(again)])
        assert second.returncode == 0, second.stderr
        assert "5 statement(s) replayed" in second.stdout
        assert "(1 row(s))" in second.stdout

    def test_repl_checkpoint_command(self, tmp_path):
        data_dir = tmp_path / "db"
        result = run_cli(
            ["--data-dir", str(data_dir)],
            stdin="create n : int\nupdate n := 41\n\\checkpoint\n\\q\n",
        )
        assert result.returncode == 0, result.stderr
        assert "checkpoint written (epoch 1)" in result.stdout
        assert (data_dir / "checkpoint-1.sos").exists()
        reopened = run_cli(
            ["--data-dir", str(data_dir)], stdin="query n + 1\n\\q\n"
        )
        assert reopened.returncode == 0, reopened.stderr
        assert "epoch 1, 0 statement(s) replayed" in reopened.stdout
        assert "42" in reopened.stdout

    def test_data_dir_rejects_model_mode(self, tmp_path):
        result = run_cli(["--model", "--data-dir", str(tmp_path / "db")])
        assert result.returncode != 0
        assert "data-dir" in result.stderr

    def test_corrupt_checkpoint_reported_as_error(self, tmp_path):
        data_dir = tmp_path / "db"
        data_dir.mkdir()
        (data_dir / "checkpoint-1.sos").write_text("not a checkpoint\n")
        result = run_cli(["--data-dir", str(data_dir)], stdin="\\q\n")
        assert result.returncode == 2
        assert "sos-checkpoint" in result.stderr


class TestLintCommand:
    """python -m repro lint — static analysis from the command line."""

    BAD_SPEC = textwrap.dedent(
        """\
        kinds IDENT, DATA, TUPLE, REL

        type constructors
            -> IDENT                  ident
            -> DATA                   int, bool
            (ident x DATA)+ -> TUPLE  tuple
            TUPLE -> REL              rel

        operators
            forall rel: rel(tuple) in REL.
                rel x rel -> rel      pair    syntax _ #
        """
    )

    def test_bundled_models_lint_clean(self):
        result = run_cli(["lint", "--strict"])
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_bad_spec_file_reported_with_span(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text(self.BAD_SPEC)
        result = run_cli(["lint", "--strict", str(path)])
        assert result.returncode == 2
        assert f"{path}:11:9: error: SOS006 [pair]:" in result.stdout

    def test_errors_fail_without_strict_too(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text(self.BAD_SPEC)
        result = run_cli(["lint", str(path)])
        assert result.returncode == 2
        assert "SOS006" in result.stdout

    def test_json_output(self, tmp_path):
        import json

        path = tmp_path / "bad.sos"
        path.write_text(self.BAD_SPEC)
        result = run_cli(["lint", "--json", str(path)])
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "SOS006" in codes

    def test_suppression_honored(self, tmp_path):
        path = tmp_path / "bad.sos"
        path.write_text(
            self.BAD_SPEC.replace(
                "rel x rel -> rel      pair    syntax _ #",
                "rel x rel -> rel      pair    syntax _ #"
                "  -- lint: disable=SOS006,SOS010",
            )
        )
        result = run_cli(["lint", "--strict", str(path)])
        assert result.returncode == 0, result.stdout

    def test_unreadable_file(self, tmp_path):
        result = run_cli(["lint", str(tmp_path / "missing.sos")])
        assert result.returncode == 3
        assert "cannot read" in result.stderr

    def test_unknown_option(self):
        result = run_cli(["lint", "--bogus"])
        assert result.returncode == 3
        assert "unknown lint option" in result.stderr

    def test_warnings_only_exit_code(self, tmp_path):
        # SOS010 (missing docs) is info; SOS003 (shadowed signature) warns.
        path = tmp_path / "warn.sos"
        path.write_text(
            textwrap.dedent(
                """\
                kinds IDENT, DATA

                type constructors
                    -> DATA    int

                operators
                    int x int -> int    plus    syntax _ + _
                    int x int -> int    plus    syntax _ + _
                """
            )
        )
        result = run_cli(["lint", str(path)])
        assert result.returncode in (1, 2)
        if result.returncode == 1:
            # warnings-only: --strict must promote to the failing code
            strict = run_cli(["lint", "--strict", str(path)])
            assert strict.returncode == 2

    def test_codes_registry(self):
        result = run_cli(["lint", "--codes"])
        assert result.returncode == 0
        for code in ("SOS001", "RUL001", "PRG001", "ENG001"):
            assert code in result.stdout

    def test_codes_registry_json(self):
        import json

        result = run_cli(["lint", "--codes", "--json"])
        payload = json.loads(result.stdout)
        codes = {entry["code"] for entry in payload}
        from repro.lint import CODES

        assert codes == set(CODES)

    def test_program_lint_bad_program(self, tmp_path):
        path = tmp_path / "prog.sos"
        path.write_text("query nonexistent\n")
        result = run_cli(["lint", "--program", str(path)])
        assert result.returncode == 2
        assert "PRG000" in result.stdout

    def test_program_lint_clean_program(self, tmp_path):
        path = tmp_path / "prog.sos"
        path.write_text(
            "create r : rel(tuple(<(a, int)>))\n"
            "analyze r\n"
            "query r\n"
        )
        result = run_cli(["lint", "--program", str(path), "--atomic"])
        assert result.returncode == 0, result.stdout

    def test_self_lint_clean(self):
        result = run_cli(["lint", "--self"])
        assert result.returncode == 0, result.stdout
