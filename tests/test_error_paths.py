"""Error paths: each failure mode raises its documented class and — because
statements run transactionally — leaves the database untouched."""

import pytest

from repro.core.types import TypeApp, rel_type, tuple_type
from repro.errors import CatalogError, StatementError, UpdateError
from repro.system import build_relational_system
from repro.testing import database_fingerprint

INT = TypeApp("int")


@pytest.fixture()
def system():
    s = build_relational_system()
    s.run(
        """
type t = tuple(<(a, int)>)
create r : rel(t)
create r_rep : btree(t, a, int)
update rep := insert(rep, r, r_rep)
update r := insert(r, mktuple[<(a, 1)>])
"""
    )
    return s


class TestCatalogErrors:
    def test_duplicate_create(self, system):
        before = database_fingerprint(system.database)
        with pytest.raises(CatalogError, match="already exists"):
            system.run_one("create r : rel(t)")
        assert database_fingerprint(system.database) == before

    def test_drop_of_missing_object(self, system):
        before = database_fingerprint(system.database)
        with pytest.raises(CatalogError, match="no such object"):
            system.run_one("delete ghost")
        assert database_fingerprint(system.database) == before

    def test_update_on_undefined_object(self, system):
        before = database_fingerprint(system.database)
        with pytest.raises(CatalogError, match="no such object") as info:
            system.run_one("update ghost := insert(ghost, mktuple[<(a, 1)>])")
        assert isinstance(info.value, StatementError)
        assert database_fingerprint(system.database) == before

    def test_errors_are_statement_errors_with_phase(self, system):
        with pytest.raises(CatalogError) as info:
            system.run_one("delete ghost")
        assert isinstance(info.value, StatementError)
        assert info.value.phase == "execute"


class TestLevelMixing:
    def test_mixed_model_and_rep_type_rejected(self, system):
        mixed = rel_type(
            tuple_type([("a", TypeApp("srel", [tuple_type([("b", INT)])]))])
        )
        with pytest.raises(CatalogError, match="mixes model and representation"):
            system.database.level_of_type(mixed)

    def test_create_with_mixed_type_rejected_and_rolled_back(self, system):
        """Through the surface syntax the kind system catches the mix even
        earlier (a rep structure is not of kind DATA); either way the
        statement fails and leaves no trace."""
        before = database_fingerprint(system.database)
        with pytest.raises(StatementError) as info:
            system.run_one(
                "create bad : rel(tuple(<(a, srel(tuple(<(b, int)>)))>))"
            )
        assert info.value.phase == "typecheck"
        assert not system.database.has_object("bad")
        assert database_fingerprint(system.database) == before

    def test_pure_levels_classify(self, system):
        db = system.database
        assert db.level_of_type(rel_type(tuple_type([("a", INT)]))) == "model"
        assert (
            db.level_of_type(TypeApp("srel", [tuple_type([("a", INT)])])) == "rep"
        )
        assert db.level_of_type(INT) == "hybrid"


class TestExplainErrors:
    def test_explain_rejects_non_query_statements(self, system):
        for source in ("delete r", "create z : int", "update r := insert(r, 1)"):
            with pytest.raises(UpdateError, match="only accepts query"):
                system.explain(source)

    def test_explain_still_accepts_queries(self, system):
        info = system.explain("r select[a > 0]")
        assert info["level"] == "model"
        info = system.explain("query r select[a > 0]")
        assert info["level"] == "model"
