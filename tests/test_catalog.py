"""Catalog as an algebraic structure (Section 6)."""

import pytest

from repro.catalog.catalog import CatalogValue
from repro.core.types import Sym, TypeApp
from repro.errors import TypeCheckError
from repro.system import build_relational_system

CAT2 = TypeApp("catalog", (TypeApp("ident"), TypeApp("ident")))


class TestCatalogValue:
    def test_insert_and_width(self):
        cat = CatalogValue(CAT2)
        cat.insert((Sym("a"), Sym("b")))
        assert len(cat) == 1
        assert cat.width == 2

    def test_insert_deduplicates(self):
        cat = CatalogValue(CAT2)
        cat.insert((Sym("a"), Sym("b")))
        cat.insert((Sym("a"), Sym("b")))
        assert len(cat) == 1

    def test_wrong_width_rejected(self):
        cat = CatalogValue(CAT2)
        with pytest.raises(ValueError):
            cat.insert((Sym("a"),))

    def test_lookup_wildcards(self):
        cat = CatalogValue(CAT2)
        cat.insert((Sym("cities"), Sym("cities_rep")))
        cat.insert((Sym("cities"), Sym("cities_idx")))
        cat.insert((Sym("states"), Sym("states_rep")))
        assert len(list(cat.lookup((Sym("cities"), None)))) == 2
        assert len(list(cat.lookup((None, None)))) == 3
        assert list(cat.lookup((Sym("x"), None))) == []

    def test_lookup_pattern_width_checked(self):
        cat = CatalogValue(CAT2)
        with pytest.raises(ValueError):
            list(cat.lookup((None,)))

    def test_remove(self):
        cat = CatalogValue(CAT2)
        cat.insert((Sym("a"), Sym("b")))
        assert cat.remove((Sym("a"), Sym("b")))
        assert not cat.remove((Sym("a"), Sym("b")))


class TestCatalogInLanguage:
    def test_create_catalog(self):
        system = build_relational_system()
        system.run_one("create mycat : catalog(ident, ident, ident)")
        value = system.database.objects["mycat"].value
        assert isinstance(value, CatalogValue)
        assert value.width == 3

    def test_insert_object_names_as_idents(self):
        system = build_relational_system()
        system.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
create r_rep : srel(t)
update rep := insert(rep, r, r_rep)
"""
        )
        cat = system.database.objects["rep"].value
        assert (Sym("r"), Sym("r_rep")) in cat.rows

    def test_cat_remove(self):
        system = build_relational_system()
        system.run(
            """
type t = tuple(<(a, int)>)
create r : rel(t)
create r_rep : srel(t)
update rep := insert(rep, r, r_rep)
update rep := cat_remove(rep, r, r_rep)
"""
        )
        assert len(system.database.objects["rep"].value) == 0

    def test_width_mismatch_rejected_at_typecheck(self):
        system = build_relational_system()
        with pytest.raises(TypeCheckError):
            system.run_one("update rep := insert(rep, a, b, c)")
