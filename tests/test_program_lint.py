"""Program static analysis (progpass): every PRG code with spans, the
``Session.check`` / ``connect(precheck=...)`` surface on both transports,
and lint-report transport parity.

The precheck acceptance criterion is asserted literally: a rejected
program must leave *zero* ``mvcc.*`` telemetry deltas and zero WAL
residue — the server never starts a transaction for it.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.api import connect
from repro.errors import LintError
from repro.lint import LintReport, lint_program
from repro.server import start_server
from repro.server.wire import decode_lint_report, encode_lint_report
from repro.system.sos_system import build_relational_system

SCHEMA = """\
type city = tuple(<(cname, string), (pop, int)>)
type town = tuple(<(tname, string), (tpop, int)>)
create cities : rel(city)
create towns : rel(town)
"""


@pytest.fixture
def db():
    system = build_relational_system()
    system.run(SCHEMA)
    return system.database


def codes(report: LintReport) -> dict:
    out: dict = {}
    for d in report:
        out.setdefault(d.code, []).append(d)
    return out


class TestProgramCodes:
    """One seeded bad program per PRG code, with span assertions."""

    def test_prg000_parse_error_spans_original_line(self, db):
        report = lint_program(db, "query cities\nquery )broken(\n")
        found = codes(report)["PRG000"]
        assert found[0].line == 2

    def test_prg000_type_error(self, db):
        report = lint_program(db, 'query cities select[cname > 3]')
        assert "PRG000" in codes(report)

    def test_prg001_use_before_create(self, db):
        program = "query newrel\ncreate newrel : rel(city)\n"
        d = codes(lint_program(db, program))["PRG001"][0]
        assert d.subject == "newrel"
        assert (d.line, d.column) == (1, 7)

    def test_prg002_use_after_delete(self, db):
        program = "delete cities\nquery cities\n"
        d = codes(lint_program(db, program))["PRG002"][0]
        assert d.subject == "cities"
        assert (d.line, d.column) == (2, 7)

    def test_prg003_duplicate_create(self, db):
        program = "create cities : rel(city)"
        d = codes(lint_program(db, program))["PRG003"][0]
        assert d.subject == "cities"
        assert (d.line, d.column) == (1, 8)

    def test_prg004_dead_store(self, db):
        program = (
            "create counts : int\n"
            "update counts := 1\n"
            "update counts := 2\n"
            "query counts\n"
        )
        d = codes(lint_program(db, program))["PRG004"][0]
        assert d.subject == "counts"
        assert d.line == 2  # anchored at the overwritten write

    def test_prg004_created_never_used(self, db):
        program = "create scratch : rel(city)\ndelete scratch\n"
        d = codes(lint_program(db, program))["PRG004"][0]
        assert d.subject == "scratch"
        assert d.line == 2

    def test_prg005_conflicting_writes_in_atomic_program(self, db):
        program = (
            "create counts : int\n"
            "update counts := 1\n"
            "update counts := 2\n"
            "query counts\n"
        )
        report = lint_program(db, program, atomic=True)
        d = codes(report)["PRG005"][0]
        assert d.subject == "counts"
        assert "PRG004" not in codes(report)

    def test_prg005_not_fired_when_write_is_read(self, db):
        program = (
            "create counts : int\n"
            "update counts := 1\n"
            "update counts := counts + 1\n"
            "query counts\n"
        )
        report = lint_program(db, program, atomic=True)
        assert "PRG005" not in codes(report)

    def test_prg006_mutations_outside_atomic(self, db):
        program = "create a : int\nupdate a := 1\nquery a\n"
        report = lint_program(db, program)
        assert "PRG006" in codes(report)
        assert "PRG006" not in codes(lint_program(db, program, atomic=True))

    def test_prg006_not_fired_for_single_mutation(self, db):
        assert "PRG006" not in codes(lint_program(db, "create a : int"))

    def test_prg007_join_without_equatable_pair(self, db):
        program = "analyze\nquery cities towns join[pop > tpop]"
        d = codes(lint_program(db, program))["PRG007"][0]
        assert d.line == 2
        assert d.column > 1  # anchored at the join keyword, not the line

    def test_prg007_equijoin_is_clean(self, db):
        program = "analyze\nquery cities towns join[pop = tpop]"
        assert "PRG007" not in codes(lint_program(db, program))

    def test_prg008_query_without_statistics(self, db):
        d = codes(lint_program(db, "query cities"))["PRG008"][0]
        assert d.subject == "cities"
        assert d.severity == "info"

    def test_prg008_silenced_by_program_analyze(self, db):
        program = "analyze cities\nquery cities"
        assert "PRG008" not in codes(lint_program(db, program))

    def test_inline_suppression(self, db):
        program = (
            "-- lint: disable=PRG008\n"
            "query cities\n"
        )
        assert "PRG008" not in codes(lint_program(db, program))

    def test_renderers_carry_spans(self, db):
        report = lint_program(db, "query cities", source="demo.sos")
        assert "demo.sos:1:7: info: PRG008 [cities]:" in report.render_text()
        payload = json.loads(report.render_json())
        (d,) = payload["diagnostics"]
        assert (d["line"], d["column"]) == (1, 7)
        assert d["source"] == "demo.sos"


class TestSessionCheck:
    def test_local_check_returns_report_without_executing(self):
        session = connect()
        session.run(SCHEMA, atomic=True)
        report = session.check("delete cities\nquery cities")
        assert [d.code for d in report.errors] == ["PRG002"]
        # Nothing executed: cities still exists.
        assert "cities" in session.database.objects

    def test_precheck_strict_rejects_before_execution(self):
        session = connect(precheck="strict")
        session.run(SCHEMA, atomic=True)
        with pytest.raises(LintError) as err:
            session.run("delete cities\nquery cities")
        assert err.value.report is not None
        assert "cities" in session.database.objects

    def test_precheck_warn_runs_and_warns(self):
        session = connect(precheck="warn")
        session.run(SCHEMA, atomic=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Two mutations without atomic=True: PRG006 warns, then runs.
            session.run("create a : int\nupdate a := 1\nquery a")
        assert "a" in session.database.objects
        assert any("PRG006" in str(w.message) for w in caught)

    def test_precheck_validation(self):
        with pytest.raises(Exception):
            connect(precheck="bogus")


class TestNetworkPrecheck:
    def test_strict_rejects_before_any_transaction(self, tmp_path):
        """The acceptance criterion: a rejected program spends no MVCC
        transaction (zero ``mvcc.*`` counter deltas) and no WAL frame."""
        data_dir = str(tmp_path)
        with start_server(data_dir=data_dir) as handle:
            session = connect(handle.address, precheck="strict")
            session.run(SCHEMA, atomic=True)
            before = session.server_metrics()["counters"]
            wal_before = _wal_bytes(data_dir)
            with pytest.raises(LintError) as err:
                session.run("delete cities\nquery cities")
            assert [d.code for d in err.value.report.errors] == ["PRG002"]
            after = session.server_metrics()["counters"]
            deltas = {
                name: after.get(name, 0) - before.get(name, 0)
                for name in set(before) | set(after)
                if name.startswith("mvcc.")
                and after.get(name, 0) != before.get(name, 0)
            }
            assert deltas == {}
            assert _wal_bytes(data_dir) == wal_before
            # cities still exists: re-creating it is a duplicate create.
            probe = session.check("create cities : rel(city)")
            assert [d.code for d in probe.errors] == ["PRG003"]
            session.disconnect()

    def test_warn_mode_still_executes(self):
        with start_server() as handle:
            session = connect(handle.address, precheck="warn")
            session.run(SCHEMA, atomic=True)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                session.run("create a : int\nupdate a := 1\nquery a")
            assert any("PRG006" in str(w.message) for w in caught)
            # It still executed: a second create is now a duplicate.
            probe = session.check("create a : int")
            assert [d.code for d in probe.errors] == ["PRG003"]
            session.disconnect()

    def test_network_check_matches_local(self):
        program = "delete cities\nquery cities\nquery towns"
        local = connect()
        local.run(SCHEMA, atomic=True)
        with start_server() as handle:
            remote = connect(handle.address)
            remote.run(SCHEMA, atomic=True)
            over_wire = remote.check(program)
            remote.disconnect()
        in_process = local.check(program)
        assert [d.as_dict() for d in over_wire] == [
            d.as_dict() for d in in_process
        ]


def _wal_bytes(data_dir: str) -> int:
    return sum(
        os.path.getsize(os.path.join(data_dir, name))
        for name in os.listdir(data_dir)
        if name.startswith("wal")
    )


class TestTransportParity:
    """A LintReport round-trips identically through the wire codecs."""

    def _report(self, db) -> LintReport:
        # Multi-line spans + a suppressed diagnostic: the suppression
        # comment removes PRG008 before the report ever crosses the wire.
        program = (
            "create scratch\n"
            "    : rel(city)\n"
            "delete scratch\n"
            "-- lint: disable=PRG008\n"
            "query cities\n"
            "query towns\n"
        )
        return lint_program(db, program, source="parity.sos")

    def test_round_trip_is_identical(self, db):
        report = self._report(db)
        assert len(report)  # the fixture must actually carry findings
        decoded = decode_lint_report(encode_lint_report(report))
        assert [d.as_dict() for d in decoded] == [
            d.as_dict() for d in report
        ]
        assert decoded.render_text() == report.render_text()
        assert decoded.render_json() == report.render_json()

    def test_empty_fields_stay_empty_strings(self):
        from repro.lint import Diagnostic

        report = LintReport([Diagnostic("PRG004", "dead store")])
        (decoded,) = decode_lint_report(encode_lint_report(report))
        # Not None: Diagnostic's empty-string defaults survive the wire.
        assert decoded.source == ""
        assert decoded.subject == ""
