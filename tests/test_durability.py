"""The durability layer outside the crash matrix: WAL codec and torn-tail
repair, group commit, checkpoint epoch rolls, atomic programs on disk,
session lifecycle — plus fault observability and statistics recovery.

The crash matrix itself (every WAL fault site × hit index) lives in
``tests/test_crash_matrix.py``; this file covers the mechanisms it relies
on and the API surface around them.
"""

import os

import pytest

from repro import observe
from repro.api import connect
from repro.durability import (
    DurabilityManager,
    RecoveryError,
    WalRecord,
    WriteAheadLog,
)
from repro.durability.manager import decode_checkpoint, encode_checkpoint
from repro.durability.wal import BEGIN, COMMIT, STMT, committed_statements, scan
from repro.errors import CatalogError, SOSError
from repro.testing import clear_faults, inject

SETUP = [
    "type item = tuple(<(k, int), (name, string)>)",
    "create items : rel(item)",
    "create items_rep : btree(item, k, int)",
    "update rep := insert(rep, items, items_rep)",
    'update items := insert(items, mktuple[<(k, 1), (name, "one")>])',
    'update items := insert(items, mktuple[<(k, 2), (name, "two")>])',
]


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    clear_faults()


def open_db(tmp_path, **kwargs):
    kwargs.setdefault("checkpoint_interval", 0)
    return connect(data_dir=str(tmp_path / "db"), **kwargs)


def prepared(tmp_path, **kwargs):
    db = open_db(tmp_path, **kwargs)
    for text in SETUP:
        db.run_one(text)
    return db


# --------------------------------------------------------------------------
# WAL codec, scan, torn-tail repair
# --------------------------------------------------------------------------


class TestWalFile:
    def test_record_roundtrip(self):
        for record in (
            WalRecord(BEGIN, 1),
            WalRecord(STMT, 1, 'update x := insert(x, "päyload")'),
            WalRecord(COMMIT, 1),
        ):
            assert WalRecord.decode(record.encode()) == record

    def test_scan_reads_back_appends(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(WalRecord(BEGIN, 1))
        wal.append(WalRecord(STMT, 1, "update a := 1"))
        wal.append(WalRecord(COMMIT, 1))
        wal.close()
        records, good = scan(path)
        assert [r.type for r in records] == [BEGIN, STMT, COMMIT]
        assert good == os.path.getsize(path)

    def test_scan_missing_file_is_empty(self, tmp_path):
        assert scan(str(tmp_path / "nope.log")) == ([], 0)

    @pytest.mark.parametrize(
        "garbage",
        [b"\x07", b"\xff" * 6, b"\xff\xff\xff\x7f" + b"\x00" * 40],
        ids=["short-header", "short-payload", "absurd-length"],
    )
    def test_torn_tail_detected_and_truncated(self, tmp_path, garbage):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(WalRecord(BEGIN, 1))
        wal.append(WalRecord(STMT, 1, "update a := 1"))
        wal.close()
        clean_size = os.path.getsize(path)
        with open(path, "ab") as f:
            f.write(garbage)
        records, good = scan(path)
        assert len(records) == 2 and good == clean_size
        # reopening truncates the tail back to the record boundary
        WriteAheadLog(path).close()
        assert os.path.getsize(path) == clean_size

    def test_corrupt_crc_ends_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(WalRecord(BEGIN, 1))
        wal.append(WalRecord(COMMIT, 1))
        wal.close()
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        open(path, "wb").write(bytes(data))
        records, good = scan(path)
        assert [r.type for r in records] == [BEGIN]
        assert good < len(data)

    def test_committed_statements_filters_uncommitted(self):
        records = [
            WalRecord(BEGIN, 1),
            WalRecord(STMT, 1, "one"),
            WalRecord(COMMIT, 1),
            WalRecord(BEGIN, 2),
            WalRecord(STMT, 2, "two"),  # no commit: crashed mid-execution
        ]
        assert [r.text for r in committed_statements(records)] == ["one"]


class TestCheckpointCodec:
    def test_roundtrip(self):
        body = "-- database dump\ncreate a : int\nupdate a := 1\n"
        assert decode_checkpoint(encode_checkpoint(3, body)) == body

    def test_tampered_body_rejected(self):
        text = encode_checkpoint(1, "create a : int\n")
        header, _, body = text.partition("\n")
        tampered = header + "\n" + body.replace("int", "str")
        with pytest.raises(RecoveryError):
            decode_checkpoint(tampered)

    def test_missing_header_rejected(self):
        with pytest.raises(RecoveryError):
            decode_checkpoint("create a : int\n")


# --------------------------------------------------------------------------
# Manager behavior: group commit, epoch rolls, atomic programs
# --------------------------------------------------------------------------


class TestDurableSession:
    def test_roundtrip_and_replay_count(self, tmp_path):
        db = prepared(tmp_path)
        before = db.dump()
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.durability.replayed_statements == len(SETUP)
        assert recovered.dump() == before
        assert recovered.query("items select[k >= 2]").value is not None

    def test_group_commit_batches_fsyncs(self, tmp_path):
        db = open_db(tmp_path, group_commit=3)
        wal = db.durability.wal
        db.run_one(SETUP[0])
        db.run_one(SETUP[1])
        assert wal.synced == 0  # two commits pending, below the batch size
        db.run_one(SETUP[2])
        assert wal.synced == 1  # third commit syncs the batch
        db.run_one(SETUP[3])
        assert wal.synced == 1
        db.flush()
        assert wal.synced == 2  # explicit flush covers the pending commit
        db.flush()
        assert wal.synced == 2  # nothing pending: flush is a no-op

    def test_checkpoint_rolls_epoch_and_prunes_files(self, tmp_path):
        db = prepared(tmp_path)
        assert db.checkpoint() == 1
        data_dir = tmp_path / "db"
        assert sorted(os.listdir(data_dir)) == ["checkpoint-1.sos", "wal-1.log"]
        db.run_one('update items := insert(items, mktuple[<(k, 3), (name, "x")>])')
        assert db.checkpoint() == 2
        assert sorted(os.listdir(data_dir)) == ["checkpoint-2.sos", "wal-2.log"]
        before = db.dump()
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.durability.epoch == 2
        assert recovered.durability.replayed_statements == 0
        assert recovered.dump() == before

    def test_automatic_checkpoint_by_interval(self, tmp_path):
        db = connect(data_dir=str(tmp_path / "db"), checkpoint_interval=4)
        for text in SETUP:
            db.run_one(text)
        assert db.durability.epoch >= 1  # 6 committed statements, interval 4

    def test_atomic_program_failure_is_invisible_after_reboot(self, tmp_path):
        db = prepared(tmp_path)
        before = db.dump()
        program = (
            'update items := insert(items, mktuple[<(k, 7), (name, "p")>])\n'
            "update items := insert(items, no_such_object)"
        )
        with pytest.raises(SOSError):
            db.run(program, atomic=True)
        recovered = open_db(tmp_path)  # crash without close
        assert recovered.dump() == before

    def test_atomic_program_success_is_durable(self, tmp_path):
        db = prepared(tmp_path)
        db.run(
            'update items := insert(items, mktuple[<(k, 7), (name, "p")>])\n'
            'update items := insert(items, mktuple[<(k, 8), (name, "q")>])',
            atomic=True,
        )
        after = db.dump()
        recovered = open_db(tmp_path)
        assert recovered.dump() == after

    def test_closed_session_answers_queries_but_refuses_mutations(self, tmp_path):
        db = prepared(tmp_path)
        db.close()
        assert db.query("items select[k >= 1]").value is not None
        with pytest.raises(CatalogError, match="closed"):
            db.run_one('update items := insert(items, mktuple[<(k, 9), (name, "z")>])')

    def test_session_is_a_context_manager(self, tmp_path):
        with open_db(tmp_path) as db:
            db.run_one(SETUP[0])
            manager = db.durability
        assert not manager.active

    def test_model_interpreter_rejects_data_dir(self, tmp_path):
        with pytest.raises(CatalogError):
            connect(model="model", data_dir=str(tmp_path / "db"))

    def test_double_attach_rejected(self, tmp_path):
        db = open_db(tmp_path)
        with pytest.raises(RuntimeError):
            DurabilityManager(str(tmp_path / "other")).attach(db.system)

    def test_checkpoint_without_data_dir_rejected(self):
        with pytest.raises(CatalogError):
            connect().checkpoint()

    def test_queries_are_not_logged(self, tmp_path):
        db = prepared(tmp_path)
        appended = db.durability.wal.appended
        db.query("items select[k >= 1]")
        assert db.durability.wal.appended == appended


# --------------------------------------------------------------------------
# Satellite: injected faults are visible in observe metrics
# --------------------------------------------------------------------------


class TestFaultObservability:
    def test_triggered_fault_bumps_counters(self, tmp_path):
        db = prepared(tmp_path)
        with observe.collecting() as metrics:
            with inject("wal.append", at=1):
                with pytest.raises(SOSError):
                    db.run_one(
                        'update items := insert(items, mktuple[<(k, 5), (name, "f")>])'
                    )
        assert metrics.counters["fault.injected"] == 1
        assert metrics.counters["fault.wal.append"] == 1

    def test_armed_but_untriggered_fault_is_silent(self, tmp_path):
        db = prepared(tmp_path)
        with observe.collecting() as metrics:
            with inject("wal.append", at=99):
                db.run_one(
                    'update items := insert(items, mktuple[<(k, 5), (name, "f")>])'
                )
        assert "fault.injected" not in metrics.counters

    def test_wal_counters_account_appends_and_fsyncs(self, tmp_path):
        db = prepared(tmp_path)
        with observe.collecting() as metrics:
            db.run_one('update items := insert(items, mktuple[<(k, 6), (name, "g")>])')
        assert metrics.counters["wal.appends"] == 3  # begin, stmt, commit
        assert metrics.counters["wal.fsyncs"] == 1
        assert metrics.counters["wal.bytes"] > 0


# --------------------------------------------------------------------------
# Satellite: statistics across checkpoint/recovery
# --------------------------------------------------------------------------


class TestStatsRecovery:
    def test_stats_survive_wal_replay(self, tmp_path):
        db = prepared(tmp_path)
        db.analyze("items")
        assert db.stats("items")
        db.close()
        recovered = open_db(tmp_path)
        assert set(recovered.stats("items")) == set(db.stats("items"))

    def test_stats_survive_checkpoint(self, tmp_path):
        db = prepared(tmp_path)
        db.analyze("items")
        db.checkpoint()
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.durability.replayed_statements == 0
        assert recovered.stats("items")
        report = recovered.explain("items select[k >= 2]")
        assert report["cost_counters"].get("cost.stats_hit", 0) > 0

    def test_no_phantom_stats_after_recovery(self, tmp_path):
        db = prepared(tmp_path)  # never analyzed
        db.checkpoint()
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.stats("items") == {}
        report = recovered.explain("items select[k >= 2]")
        assert report["cost_counters"].get("cost.stats_hit", 0) == 0
