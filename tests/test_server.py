"""The socket server: conflicts over the wire, disconnect handling, error
taxonomy parity, crash-at-ack durability, and cross-client group commit.

Servers run in-process on a background thread (``start_server``), so the
fault-injection registry in :mod:`repro.testing.faults` reaches the
server-side fault points directly.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.api import connect
from repro.errors import (
    CatalogError,
    ConflictError,
    ParseError,
    ProtocolError,
    StatementError,
)
from repro.server import start_server
from repro.testing import inject

SCHEMA = """
type city = tuple(<(cname, string), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""

INSERT = 'update cities := insert(cities, mktuple[<(cname, "{name}"), (pop, {pop})>])'


def count(session):
    return session.query("cities_rep feed count").value


def wal_bytes(data_dir):
    return sum(
        os.path.getsize(os.path.join(data_dir, name))
        for name in os.listdir(data_dir)
        if name.startswith("wal")
    )


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def server():
    with start_server() as handle:
        yield handle


@pytest.fixture
def durable_server(tmp_path):
    with start_server(data_dir=str(tmp_path)) as handle:
        yield handle, str(tmp_path)


class TestConflictsOverTheWire:
    def test_first_committer_wins(self, server):
        first = connect(server.address)
        second = connect(server.address)
        first.run(SCHEMA)
        first.begin()
        second.begin()
        first.run_one(INSERT.format(name="aa", pop=1))
        second.run_one(INSERT.format(name="bb", pop=2))
        first.commit()
        with pytest.raises(ConflictError) as info:
            second.commit()
        assert info.value.retryable
        assert "cities" in info.value.names
        # retry on a fresh snapshot succeeds
        second.begin()
        second.run_one(INSERT.format(name="bb", pop=2))
        second.commit()
        assert count(first) == 2
        assert first.ping()["metrics"]["mvcc.conflicts"] == 1
        first.disconnect()
        second.disconnect()

    def test_snapshot_isolation_between_clients(self, server):
        writer = connect(server.address)
        reader = connect(server.address)
        writer.run(SCHEMA)
        writer.begin()
        writer.run_one(INSERT.format(name="aa", pop=1))
        assert count(writer) == 1
        assert count(reader) == 0
        writer.commit()
        assert count(reader) == 1
        writer.disconnect()
        reader.disconnect()


class TestDisconnect:
    def test_disconnect_mid_transaction_rolls_back(self, durable_server):
        handle, data_dir = durable_server
        setup = connect(handle.address)
        setup.run(SCHEMA)
        baseline = wal_bytes(data_dir)

        doomed = connect(handle.address)
        doomed.begin()
        doomed.run_one(INSERT.format(name="aa", pop=1))
        doomed.disconnect()  # vanish mid-transaction

        engine = handle.server.engine
        assert wait_for(lambda: engine.metrics["mvcc.rollbacks"] >= 1)
        assert count(setup) == 0
        assert wal_bytes(data_dir) == baseline  # zero WAL residue
        setup.disconnect()

    def test_operations_after_disconnect_raise_protocol_error(self, server):
        db = connect(server.address)
        db.disconnect()
        with pytest.raises(ProtocolError):
            db.run_one("query 1 + 1")

    def test_server_stop_surfaces_as_protocol_error(self):
        handle = start_server()
        db = connect(handle.address)
        assert db.run_one("query 1 + 1").value == 2
        handle.stop()
        with pytest.raises(ProtocolError):
            db.query("1 + 1")


class TestErrorTaxonomy:
    def test_parse_error_keeps_position(self, server):
        db = connect(server.address)
        with pytest.raises(ParseError) as info:
            db.run_one("query 1 +")
        assert isinstance(info.value, StatementError)
        assert info.value.phase == "parse"
        # the original ParseError (with its position) is rebuilt as the cause
        assert isinstance(info.value.__cause__, ParseError)
        assert info.value.__cause__.line == 1
        assert info.value.__cause__.column == 10
        db.disconnect()

    def test_statement_error_keeps_index_and_source(self, server):
        db = connect(server.address)
        with pytest.raises(CatalogError) as info:
            db.run("type t = tuple(<(a, int)>)\nupdate ghost := 1")
        assert info.value.index == 1
        assert "ghost" in info.value.source
        db.disconnect()

    def test_closed_session_contract_over_wire(self, server):
        db = connect(server.address)
        db.run(SCHEMA)
        db.run_one(INSERT.format(name="aa", pop=1))
        db.close()
        db.close()  # idempotent — the connection survives
        assert db.closed
        assert count(db) == 1
        with pytest.raises(CatalogError, match="closed"):
            db.run_one(INSERT.format(name="bb", pop=2))
        db.disconnect()


class TestCrashAtAck:
    def test_commit_survives_dropped_ack(self, durable_server):
        handle, data_dir = durable_server
        db = connect(handle.address)
        db.run(SCHEMA)
        with inject("server.ack") as plan:
            with pytest.raises(ProtocolError):
                db.run_one(INSERT.format(name="aa", pop=1))
            assert plan.triggered
        # the connection died but the statement was synced before the ack:
        # a fresh client sees it, and so does recovery from disk.
        fresh = connect(handle.address)
        assert count(fresh) == 1
        fresh.disconnect()
        handle.stop()
        with connect(data_dir=data_dir) as recovered:
            assert count(recovered) == 1


class TestGroupCommit:
    def test_concurrent_clients_all_durable(self, durable_server):
        handle, data_dir = durable_server
        setup = connect(handle.address)
        setup.run(SCHEMA)

        errors = []

        def client(n):
            # all eight write the same relation, so losers of the
            # first-committer-wins race retry — the documented pattern
            try:
                db = connect(handle.address)
                while True:
                    try:
                        db.run_one(INSERT.format(name=f"c{n}", pop=n + 1))
                        break
                    except ConflictError:
                        continue
                db.disconnect()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert count(setup) == 8
        setup.disconnect()
        handle.stop()
        with connect(data_dir=data_dir) as recovered:
            assert count(recovered) == 8

    def test_ping_reports_session_counters(self, server):
        db = connect(server.address)
        db.run(SCHEMA)
        db.query("cities_rep feed count")
        info = db.ping()
        assert info["server"] == "repro"
        assert info["durable"] is False
        assert info["counters"]["queries"] >= 1
        assert info["counters"]["statements"] >= 4
        assert info["in_transaction"] is False
        db.disconnect()
