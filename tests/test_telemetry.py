"""Server-wide telemetry: the :mod:`repro.telemetry` registry and its
renderers, the ``metrics`` wire op, the Prometheus exposition endpoint,
the slow-query log, and cross-wire trace stitching.

The registry is process-wide and stays enabled once any server has
started in this process, so every assertion against live counters is
written as a *delta* between two snapshots — never as an absolute.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.api import connect
from repro.errors import ConflictError
from repro.observe import ChromeTraceExporter
from repro.telemetry import (
    MetricsRegistry,
    RollingHistogram,
    render_prometheus,
    render_top,
)

SCHEMA = """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
update cities := insert(cities, mktuple[<(cname, "aa"), (center, pt(1, 1)), (pop, 100)>])
update cities := insert(cities, mktuple[<(cname, "bb"), (center, pt(2, 2)), (pop, 200000)>])
"""


# ---------------------------------------------------------------------------
# Registry machinery (no server required)
# ---------------------------------------------------------------------------


class TestRollingHistogram:
    def test_empty(self):
        hist = RollingHistogram()
        assert hist.count == 0
        assert hist.as_dict() == {"count": 0, "sum": 0.0}

    def test_basic_stats(self):
        hist = RollingHistogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.record(v)
        d = hist.as_dict()
        assert d["count"] == 4
        assert d["sum"] == 10.0
        assert d["min"] == 1.0 and d["max"] == 4.0
        assert d["mean"] == 2.5
        assert d["p50"] == 2.5

    def test_window_sheds_but_totals_are_exact(self):
        hist = RollingHistogram(limit=8)
        for i in range(100):
            hist.record(float(i))
        # Lifetime count/sum survive the shedding...
        assert hist.count == 100
        assert hist.total_sum == sum(range(100))
        # ...while the retained window stays bounded and recent.
        assert len(hist.values) <= 8
        assert min(hist.values) >= 90.0
        d = hist.as_dict()
        assert d["count"] == 100
        assert d["p50"] >= 90.0  # percentiles describe recent behavior


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.incr("a.hits")
        reg.incr("a.hits", 4)
        reg.gauge("a.active", 3)
        reg.gauge("a.active", 2)
        reg.observe("a.seconds", 0.5)
        snap = reg.snapshot()
        assert snap["counters"]["a.hits"] == 5
        assert snap["gauges"]["a.active"] == 2
        assert snap["histograms"]["a.seconds"]["count"] == 1
        assert snap["histograms"]["a.seconds"]["sum"] == 0.5

    def test_declare_lists_families_at_zero_and_never_overwrites(self):
        reg = MetricsRegistry()
        reg.incr("x.count", 7)
        reg.declare(
            counters=("x.count", "y.count"),
            gauges=("g",),
            histograms=("h.seconds",),
        )
        snap = reg.snapshot()
        assert snap["counters"]["x.count"] == 7  # declare kept the value
        assert snap["counters"]["y.count"] == 0
        assert snap["gauges"]["g"] == 0.0
        assert snap["histograms"]["h.seconds"] == {"count": 0, "sum": 0.0}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.incr("a", 2)
        reg.observe("b", 1.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_module_guards_are_zero_overhead_when_disabled(self):
        was = telemetry.ENABLED
        telemetry.disable()
        try:
            before = telemetry.REGISTRY.snapshot()
            telemetry.incr("guarded.counter")
            telemetry.gauge("guarded.gauge", 1)
            telemetry.observe_value("guarded.hist", 1.0)
            assert telemetry.REGISTRY.snapshot() == before
        finally:
            if was:
                telemetry.enable()


class TestRenderPrometheus:
    SNAP = {
        "counters": {"mvcc.commits": 12, "wal.bytes": 4096},
        "gauges": {"server.active_sessions": 3},
        "histograms": {
            "wal.fsync_seconds": {
                "count": 9, "sum": 0.18,
                "min": 0.01, "max": 0.04, "mean": 0.02,
                "p50": 0.02, "p95": 0.035, "p99": 0.04,
            },
            "empty.seconds": {"count": 0, "sum": 0.0},
        },
    }

    def test_counters_get_total_suffix_and_type_lines(self):
        text = render_prometheus(self.SNAP)
        assert "# TYPE repro_mvcc_commits_total counter" in text
        assert "repro_mvcc_commits_total 12" in text
        assert "repro_wal_bytes_total 4096" in text

    def test_gauges(self):
        text = render_prometheus(self.SNAP)
        assert "# TYPE repro_server_active_sessions gauge" in text
        assert "repro_server_active_sessions 3" in text

    def test_histograms_render_as_summaries(self):
        text = render_prometheus(self.SNAP)
        assert "# TYPE repro_wal_fsync_seconds summary" in text
        assert 'repro_wal_fsync_seconds{quantile="0.5"} 0.02' in text
        assert 'repro_wal_fsync_seconds{quantile="0.99"} 0.04' in text
        assert "repro_wal_fsync_seconds_count 9" in text
        assert "repro_wal_fsync_seconds_sum 0.18" in text

    def test_empty_histogram_still_lists_count_and_sum(self):
        text = render_prometheus(self.SNAP)
        assert "repro_empty_seconds_count 0" in text
        assert "repro_empty_seconds_sum 0" in text

    def test_dotted_names_are_mangled(self):
        text = render_prometheus({"counters": {"a.b-c.d": 1}})
        assert "repro_a_b_c_d_total 1" in text


class TestRenderTop:
    SNAP = {
        "counters": {
            "server.connections": 4,
            "server.statements": 100,
            "mvcc.commits": 60,
            "mvcc.conflicts": 2,
            "wal.bytes": 10_000,
            "group_commit.batches": 10,
            "group_commit.synced": 40,
        },
        "gauges": {"server.active_sessions": 3, "mvcc.open_transactions": 1},
        "histograms": {
            "wal.fsync_seconds": {
                "count": 5, "sum": 0.05,
                "p50": 0.01, "p95": 0.02, "p99": 0.02,
            },
        },
        "server": {"uptime_seconds": 12.0},
    }

    def test_screen_contents(self):
        screen = render_top(self.SNAP, address="repro://h:1")
        assert "repro top — repro://h:1" in screen
        assert "up 12s" in screen
        assert "commits" in screen and "conflicts" in screen
        assert "mean batch    4.00" in screen
        assert "fsync" in screen and "p95" in screen

    def test_rates_against_previous_snapshot(self):
        previous = {
            "counters": {"server.statements": 80, "wal.bytes": 5_000},
        }
        screen = render_top(self.SNAP, previous, interval=2.0)
        assert "10.0/s" in screen  # (100 - 80) / 2
        assert "2500.0 B/s" in screen

    def test_no_previous_means_zero_rates(self):
        screen = render_top(self.SNAP)
        assert "0.0/s" in screen


# ---------------------------------------------------------------------------
# Live server: wire op, slow-query log, exposition, trace stitching
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def telemetry_handle(tmp_path_factory):
    """One durable server with every telemetry surface armed: the
    metrics endpoint on an ephemeral port, and a log-everything
    slow-query threshold feeding a JSON-lines file."""
    from repro.server import start_server

    root = tmp_path_factory.mktemp("telemetry")
    handle = start_server(
        data_dir=str(root / "data"),
        metrics_port=0,
        slow_query_ms=0.0,
        slow_query_log=str(root / "slow.jsonl"),
    )
    handle.slow_log_path = str(root / "slow.jsonl")
    yield handle
    handle.stop()


def _fetch_exposition(handle) -> tuple[str, str]:
    with urllib.request.urlopen(handle.metrics_url, timeout=10) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


def _parse_exposition(text: str) -> dict[str, float]:
    """``{series-with-labels: value}`` from an exposition page."""
    series = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        series[name] = float(value)
    return series


class TestServerMetricsOp:
    def test_snapshot_shape_and_deltas(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            before = db.server_metrics()
            db.run(SCHEMA)
            db.query("cities_rep feed count")
            after = db.server_metrics()
        finally:
            db.disconnect()
        for section in ("counters", "gauges", "histograms", "server"):
            assert section in after
        delta = (
            after["counters"]["server.statements"]
            - before["counters"]["server.statements"]
        )
        assert delta == 7  # 6 schema statements + 1 query
        assert (
            after["counters"]["mvcc.commits"]
            > before["counters"]["mvcc.commits"]
        )
        assert (
            after["counters"]["server.queries"]
            - before["counters"]["server.queries"]
        ) == 1
        assert (
            after["histograms"]["server.statement_seconds"]["count"]
            - before["histograms"]["server.statement_seconds"]["count"]
        ) == 7
        assert after["gauges"]["server.uptime_seconds"] > 0
        assert after["server"]["durable"] is True

    def test_status_op_is_an_alias(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            status = db._client.request("status")
            assert "counters" in status and "server" in status
        finally:
            db.disconnect()

    def test_core_families_are_declared_before_traffic(self, telemetry_handle):
        from repro.server.net import CORE_METRIC_FAMILIES

        db = connect(telemetry_handle.address)
        try:
            snap = db.server_metrics()
        finally:
            db.disconnect()
        for name in CORE_METRIC_FAMILIES["counters"]:
            assert name in snap["counters"]
        for name in CORE_METRIC_FAMILIES["gauges"]:
            assert name in snap["gauges"]
        for name in CORE_METRIC_FAMILIES["histograms"]:
            assert name in snap["histograms"]

    def test_open_transaction_gauge(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            before = db.server_metrics()["gauges"]["mvcc.open_transactions"]
            db.begin()
            during = db.server_metrics()["gauges"]["mvcc.open_transactions"]
            db.rollback()
            after = db.server_metrics()["gauges"]["mvcc.open_transactions"]
            assert during == before + 1
            assert after == before
        finally:
            db.disconnect()


class TestSlowQueryLog:
    def test_every_statement_logged_at_threshold_zero(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            before = db.server_metrics()["counters"]["server.slow_queries"]
            db.run_one("query 1 + 1")
            snap = db.server_metrics()
            after = snap["counters"]["server.slow_queries"]
        finally:
            db.disconnect()
        assert after == before + 1
        recent = snap["server"]["slow_queries"]
        assert recent, "metrics op must surface recent slow queries"
        entry = recent[-1]
        assert entry["statement"] == "query 1 + 1"
        assert entry["ms"] >= 0.0
        assert "total" in entry["timings"]
        assert entry["kind"] == "query"

    def test_json_lines_file(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            db.run_one("query 2 + 2")
        finally:
            db.disconnect()
        with open(telemetry_handle.slow_log_path) as f:
            lines = [json.loads(line) for line in f if line.strip()]
        assert lines
        entry = next(e for e in reversed(lines)
                     if e["statement"] == "query 2 + 2")
        assert set(entry) >= {
            "ts", "session", "ms", "kind", "statement", "timings", "fired",
        }


class TestExposition:
    """Acceptance: the ``--metrics-port`` page shows commit/conflict
    counters and fsync percentiles moving under a concurrent 8-client
    workload."""

    def test_content_type_and_404(self, telemetry_handle):
        _, content_type = _fetch_exposition(telemetry_handle)
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        bogus = telemetry_handle.metrics_url.replace("/metrics", "/nope")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(bogus, timeout=10)
        assert info.value.code == 404

    def test_counters_move_under_concurrent_workload(self, telemetry_handle):
        text_before, _ = _fetch_exposition(telemetry_handle)
        before = _parse_exposition(text_before)

        def client(i: int) -> None:
            # Concurrent `update rep := insert(...)` statements can lose
            # the first-committer-wins race; the retry DSN turns those
            # losses into client-side retries instead of thread crashes.
            db = connect(telemetry_handle.address + "?retries=8&backoff_ms=20")
            try:
                db.run(
                    f"type t{i} = tuple(<(k, int)>)\n"
                    f"create load{i} : rel(t{i})\n"
                    f"create load{i}_rep : btree(t{i}, k, int)\n"
                    f"update rep := insert(rep, load{i}, load{i}_rep)"
                )
                for k in range(4):
                    db.run_one(
                        f"update load{i} := "
                        f"insert(load{i}, mktuple[<(k, {k})>])"
                    )
            finally:
                db.disconnect()

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # One deterministic first-committer-wins loser on top.
        a = connect(telemetry_handle.address)
        b = connect(telemetry_handle.address)
        try:
            a.begin()
            b.begin()
            a.run_one("update load0 := insert(load0, mktuple[<(k, 90)>])")
            b.run_one("update load0 := insert(load0, mktuple[<(k, 91)>])")
            a.commit()
            with pytest.raises(ConflictError):
                b.commit()
        finally:
            a.disconnect()
            b.disconnect()

        text_after, _ = _fetch_exposition(telemetry_handle)
        after = _parse_exposition(text_after)

        # At least the 8 clients' create + 4 inserts each, plus the
        # conflict winner (type statements may or may not commit).
        commits = (
            after["repro_mvcc_commits_total"]
            - before["repro_mvcc_commits_total"]
        )
        assert commits >= 8 * 5 + 1
        assert (
            after["repro_mvcc_conflicts_total"]
            - before["repro_mvcc_conflicts_total"]
        ) >= 1
        # Durable server: the workload fsynced, and the latency summary
        # carries live percentiles.
        assert (
            after["repro_wal_fsync_seconds_count"]
            - before["repro_wal_fsync_seconds_count"]
        ) > 0
        assert after['repro_wal_fsync_seconds{quantile="0.5"}'] >= 0.0
        assert after['repro_wal_fsync_seconds{quantile="0.99"}'] >= (
            after['repro_wal_fsync_seconds{quantile="0.5"}']
        )
        assert (
            after["repro_server_statement_seconds_count"]
            - before["repro_server_statement_seconds_count"]
        ) >= 8 * 8
        assert after["repro_wal_bytes_total"] > before["repro_wal_bytes_total"]
        assert after["repro_group_commit_batches_total"] >= (
            before["repro_group_commit_batches_total"]
        )


class TestTraceStitching:
    """Acceptance: a traced client statement against ``repro://``
    produces one Chrome-trace JSON whose server-side phase spans share
    the client's trace ID and nest under the client statement span."""

    @pytest.fixture()
    def traced(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        # Set up the schema *before* subscribing so the exporter holds
        # exactly the statements each test issues.
        if "cities" not in db.dump():
            db.run(SCHEMA)
        exporter = ChromeTraceExporter()
        db.subscribe(exporter)
        yield db, exporter
        db.disconnect()

    def test_server_spans_nest_under_client_statement(self, traced):
        db, exporter = traced
        db.run_one("query cities_rep feed count")
        doc = json.loads(exporter.to_json())
        events = doc["traceEvents"]

        # One self-contained Chrome-trace document.
        assert doc["displayTimeUnit"] == "ms"
        statements = [
            e for e in events
            if e["name"] == "statement"
            and e.get("args", {}).get("op") == "run_one"
        ]
        begin = next(e for e in statements if e["ph"] == "B")
        end = next(e for e in statements if e["ph"] == "E")
        assert begin["args"]["trace_id"] == db.trace_id

        remote = [
            e for e in events if e.get("args", {}).get("remote") is True
        ]
        phases = {e["name"] for e in remote}
        assert "phase.execute" in phases
        assert any(name.startswith("phase.") for name in phases)
        for e in remote:
            # Same trace ID as the client statement span...
            assert e["args"]["trace_id"] == db.trace_id
            # ...and strictly inside it on the stitched timeline.
            assert begin["ts"] <= e["ts"] <= end["ts"]

    def test_untraced_sessions_pay_nothing(self, telemetry_handle):
        db = connect(telemetry_handle.address)
        try:
            assert not db.tracer.enabled
            result = db.run_one("query 3 * 3")
            assert result.value == 9
        finally:
            db.disconnect()

    def test_commit_is_traced_too(self, traced):
        db, exporter = traced
        db.begin()
        db.run_one(
            'update cities := insert(cities, '
            'mktuple[<(cname, "zz"), (center, pt(9, 9)), (pop, 5)>])'
        )
        db.commit()
        commits = [
            e for e in exporter.events
            if e["name"] == "statement"
            and e.get("args", {}).get("op") == "commit"
        ]
        assert commits, "commit must produce a client statement span"


class TestTopCommand:
    def test_top_once_prints_one_screen(self, telemetry_handle, capsys):
        from repro.__main__ import main

        code = main(["top", telemetry_handle.address, "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "commits" in out and "wal" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_top_rejects_bad_usage(self, capsys):
        from repro.__main__ import main

        assert main(["top"]) == 2
        assert main(["top", "repro://h:1", "--interval", "x"]) == 2

    def test_top_unreachable_server_fails_cleanly(self, capsys):
        from repro.__main__ import main

        assert main(["top", "repro://127.0.0.1:1", "--once"]) == 2
