"""Unit tests for type terms (paper Section 3, Def. of types as terms)."""

import pytest

from repro.core.terms import Fun, Var
from repro.core.types import (
    ArgList,
    FunType,
    Lit,
    ProductType,
    Sym,
    TermArg,
    TypeApp,
    attr_type,
    attrs_of,
    concat_tuple_types,
    format_type,
    rel_type,
    tuple_type,
    walk_type,
)

INT = TypeApp("int")
STRING = TypeApp("string")


class TestConstruction:
    def test_constant_type(self):
        assert INT.constructor == "int"
        assert INT.args == ()

    def test_tuple_type_builder(self):
        t = tuple_type([("name", STRING), ("age", INT)])
        assert t.constructor == "tuple"
        assert isinstance(t.args[0], ArgList)
        assert len(t.args[0]) == 2

    def test_rel_type_builder(self):
        t = rel_type(tuple_type([("a", INT)]))
        assert t.constructor == "rel"
        assert isinstance(t.args[0], TypeApp)

    def test_equality_is_structural(self):
        a = tuple_type([("name", STRING), ("age", INT)])
        b = tuple_type([("name", STRING), ("age", INT)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_attribute_order(self):
        a = tuple_type([("name", STRING), ("age", INT)])
        b = tuple_type([("age", INT), ("name", STRING)])
        assert a != b


class TestFormatting:
    def test_paper_notation(self):
        t = rel_type(tuple_type([("name", STRING), ("age", INT)]))
        assert format_type(t) == "rel(tuple(<(name, string), (age, int)>))"

    def test_function_type(self):
        t = FunType((STRING,), rel_type(tuple_type([("a", INT)])))
        assert format_type(t) == "(string -> rel(tuple(<(a, int)>)))"

    def test_nullary_function_type(self):
        t = FunType((), INT)
        assert format_type(t) == "(-> int)"

    def test_product_type(self):
        assert format_type(ProductType((INT, STRING))) == "(int x string)"

    def test_value_args(self):
        t = TypeApp("string", (Lit(4),))
        assert format_type(t) == "string(4)"

    def test_btree_type(self):
        city = tuple_type([("pop", INT)])
        t = TypeApp("btree", (city, Sym("pop"), INT))
        assert format_type(t) == "btree(tuple(<(pop, int)>), pop, int)"


class TestAttrs:
    def test_attrs_of(self):
        t = tuple_type([("name", STRING), ("age", INT)])
        assert attrs_of(t) == (("name", STRING), ("age", INT))

    def test_attr_type(self):
        t = tuple_type([("name", STRING), ("age", INT)])
        assert attr_type(t, "age") == INT
        assert attr_type(t, "nope") is None

    def test_attrs_of_non_tuple_raises(self):
        with pytest.raises(TypeError):
            attrs_of(INT)

    def test_attr_type_non_tuple_is_none(self):
        assert attr_type(INT, "x") is None


class TestConcat:
    def test_join_type_operator_semantics(self):
        a = tuple_type([("name", STRING)])
        b = tuple_type([("age", INT)])
        assert attrs_of(concat_tuple_types(a, b)) == (
            ("name", STRING),
            ("age", INT),
        )

    def test_duplicate_attribute_rejected(self):
        a = tuple_type([("name", STRING)])
        with pytest.raises(ValueError):
            concat_tuple_types(a, a)


class TestTermArg:
    def test_equal_key_functions_make_equal_types(self):
        f1 = TermArg(Fun((("s", INT),), Var("s")))
        f2 = TermArg(Fun((("s", INT),), Var("s")))
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert TypeApp("lsdtree", (INT, f1)) == TypeApp("lsdtree", (INT, f2))

    def test_alpha_renamed_key_functions_equal(self):
        f1 = TermArg(Fun((("s", INT),), Var("s")))
        f2 = TermArg(Fun((("t", INT),), Var("t")))
        assert f1 == f2

    def test_different_bodies_differ(self):
        f1 = TermArg(Fun((("s", INT),), Var("s")))
        f2 = TermArg(Fun((("s", INT),), Var("other")))
        assert f1 != f2


class TestWalk:
    def test_walk_visits_nested(self):
        t = rel_type(tuple_type([("name", STRING), ("age", INT)]))
        seen = list(walk_type(t))
        assert t in seen
        assert STRING in seen
        assert INT in seen
        assert any(isinstance(x, Sym) and x.name == "age" for x in seen)
