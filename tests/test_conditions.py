"""Rule conditions in isolation: catalog lookups, type tests, backtracking."""

import pytest

from repro.core.patterns import PApp, PVar
from repro.core.terms import Apply, Var
from repro.core.types import Sym, TypeApp, tuple_type
from repro.optimizer.conditions import (
    CatalogCondition,
    FunCondition,
    StatsCondition,
    TypeCondition,
    solve_conditions,
)
from repro.optimizer.termmatch import MatchState

INT = TypeApp("int")
CITY = tuple_type([("pop", INT)])


@pytest.fixture()
def db(system):
    system.run(
        """
type city = tuple(<(pop, int)>)
create cities : rel(city)
create rep1 : srel(city)
create rep2 : btree(city, pop, int)
update rep := insert(rep, cities, rep1)
update rep := insert(rep, cities, rep2)
"""
    )
    return system.database


def _state_with_rel(db):
    state = MatchState()
    term = Var("cities")
    term.type = db.type_of("cities")
    state.vbinds["rel1"] = term
    return state


class TestCatalogCondition:
    def test_enumerates_all_representations(self, db):
        condition = CatalogCondition("rep", ("rel1", "r"))
        solutions = list(condition.solutions(_state_with_rel(db), db))
        assert len(solutions) == 2
        names = {s.vbinds["r"].name for s in solutions}
        assert names == {"rep1", "rep2"}

    def test_bound_variables_constrain(self, db):
        state = _state_with_rel(db)
        bound = Var("rep2")
        bound.type = db.type_of("rep2")
        state.vbinds["r"] = bound
        condition = CatalogCondition("rep", ("rel1", "r"))
        solutions = list(condition.solutions(state, db))
        assert len(solutions) == 1

    def test_missing_catalog_yields_nothing(self, db):
        condition = CatalogCondition("nope", ("rel1", "r"))
        assert list(condition.solutions(_state_with_rel(db), db)) == []

    def test_arity_mismatch_yields_nothing(self, db):
        """rep is a 2-column catalog; a 3-variable lookup cannot match."""
        condition = CatalogCondition("rep", ("rel1", "r", "extra"))
        assert list(condition.solutions(_state_with_rel(db), db)) == []

    def test_variable_bound_to_complex_subterm_fails(self, db):
        """A variable bound to a nested expression (not an object name)
        must fail the lookup rather than act as a wildcard."""
        state = _state_with_rel(db)
        state.vbinds["rel1"] = Apply("feed", (Var("cities"),))
        condition = CatalogCondition("rep", ("rel1", "r"))
        assert list(condition.solutions(state, db)) == []

    def test_bound_objects_get_types(self, db):
        condition = CatalogCondition("rep", ("rel1", "r"))
        for solution in condition.solutions(_state_with_rel(db), db):
            assert solution.vbinds["r"].type is not None


class TestTypeCondition:
    def test_direct_match_binds_pattern_vars(self, db):
        state = _state_with_rel(db)
        state.vbinds["r"] = _obj(db, "rep2")
        condition = TypeCondition(
            "r", PApp("btree", (PVar("t"), PVar("a"), PVar("d")))
        )
        (solution,) = list(condition.solutions(state, db))
        assert solution.tbinds["a"] == Sym("pop")
        assert solution.tbinds["d"] == INT

    def test_subtype_match(self, db):
        state = _state_with_rel(db)
        state.vbinds["r"] = _obj(db, "rep2")
        condition = TypeCondition(
            "r", PApp("relrep", (PVar("t"),)), subtype_ok=True
        )
        assert len(list(condition.solutions(state, db))) == 1

    def test_no_subtype_without_flag(self, db):
        state = _state_with_rel(db)
        state.vbinds["r"] = _obj(db, "rep2")
        condition = TypeCondition("r", PApp("relrep", (PVar("t"),)))
        assert list(condition.solutions(state, db)) == []

    def test_unbound_variable_yields_nothing(self, db):
        condition = TypeCondition("ghost", PApp("relrep", (PVar("t"),)))
        assert list(condition.solutions(MatchState(), db)) == []


class TestFunCondition:
    def test_boolean_filter(self, db):
        yes = FunCondition(lambda state, db: True)
        no = FunCondition(lambda state, db: False)
        state = MatchState()
        assert list(yes.solutions(state, db)) == [state]
        assert list(no.solutions(state, db)) == []

    def test_generator_form(self, db):
        def expand(state, db):
            for i in range(3):
                new = state.copy()
                new.tbinds["i"] = Sym(str(i))
                yield new

        condition = FunCondition(expand)
        assert len(list(condition.solutions(MatchState(), db))) == 3


class TestStatsCondition:
    def test_unbound_variable_yields_nothing(self, db):
        condition = StatsCondition("ghost", lambda entry: True)
        assert list(condition.solutions(MatchState(), db)) == []

    def test_missing_statistics_pass_none_to_predicate(self, db):
        seen = []
        condition = StatsCondition("rel1", seen.append)
        list(condition.solutions(_state_with_rel(db), db))
        assert seen == [None]

    def test_predicate_filters(self, db):
        accept = StatsCondition("rel1", lambda entry: entry is None)
        reject = StatsCondition("rel1", lambda entry: entry is not None)
        state = _state_with_rel(db)
        assert len(list(accept.solutions(state, db))) == 1
        assert list(reject.solutions(state, db)) == []


class TestBacktracking:
    def test_later_conditions_filter_earlier_solutions(self, db):
        """rep(rel1, r) has two solutions; the btree type test keeps one."""
        conditions = (
            CatalogCondition("rep", ("rel1", "r")),
            TypeCondition("r", PApp("btree", (PVar("t"), PVar("a"), PVar("d")))),
        )
        solutions = list(solve_conditions(conditions, _state_with_rel(db), db))
        assert len(solutions) == 1
        assert solutions[0].vbinds["r"].name == "rep2"

    def test_empty_condition_list(self, db):
        state = MatchState()
        assert list(solve_conditions((), state, db)) == [state]


def _obj(db, name):
    term = Var(name)
    term.type = db.type_of(name)
    return term
