"""B+-tree unit and property tests (the ``btree`` structure of Section 4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import BOTTOM_KEY, TOP_KEY, BTree
from repro.storage.io import PageManager


def fresh(order=4):
    return BTree(key=lambda t: t[0], order=order, pages=PageManager())


class TestBasics:
    def test_order_minimum(self):
        with pytest.raises(StorageError):
            BTree(key=lambda t: t, order=2)

    def test_insert_scan_sorted(self):
        bt = fresh()
        for k in [5, 1, 9, 3, 7]:
            bt.insert((k, f"v{k}"))
        assert [t[0] for t in bt.scan()] == [1, 3, 5, 7, 9]
        assert len(bt) == 5

    def test_duplicates_allowed(self):
        bt = fresh()
        for i in range(10):
            bt.insert((42, i))
        assert len(list(bt.exact_search(42))) == 10

    def test_range_inclusive(self):
        bt = fresh()
        for k in range(20):
            bt.insert((k, k))
        assert [t[0] for t in bt.range_search(5, 8)] == [5, 6, 7, 8]

    def test_halfranges_with_bottom_top(self):
        bt = fresh()
        for k in range(10):
            bt.insert((k, k))
        assert [t[0] for t in bt.range_search(BOTTOM_KEY, 3)] == [0, 1, 2, 3]
        assert [t[0] for t in bt.range_search(7, TOP_KEY)] == [7, 8, 9]
        assert len(list(bt.range_search(BOTTOM_KEY, TOP_KEY))) == 10

    def test_empty_range(self):
        bt = fresh()
        bt.insert((1, 1))
        assert list(bt.range_search(5, 9)) == []

    def test_string_keys(self):
        bt = fresh()
        for name in ["bob", "ann", "cia"]:
            bt.insert((name, name))
        assert [t[0] for t in bt.scan()] == ["ann", "bob", "cia"]

    def test_function_key(self):
        # The second constructor variant: key by derived value.
        bt = BTree(key=lambda t: t[0] // 1000, order=4, pages=PageManager())
        for k in [100, 1500, 2700, 900]:
            bt.insert((k,))
        assert [t[0] for t in bt.range_search(0, 0)] == [100, 900]


class TestDeletion:
    def test_delete_present(self):
        bt = fresh()
        bt.insert((1, "a"))
        assert bt.delete((1, "a"))
        assert len(bt) == 0
        assert not bt.delete((1, "a"))

    def test_delete_selects_by_value_among_duplicates(self):
        bt = fresh()
        bt.insert((5, "x"))
        bt.insert((5, "y"))
        assert bt.delete((5, "y"))
        assert list(bt.exact_search(5)) == [(5, "x")]

    def test_delete_tuples_from_search_stream(self):
        bt = fresh()
        for k in range(30):
            bt.insert((k, k))
        deleted = bt.delete_tuples(bt.range_search(10, 19))
        assert deleted == 10
        assert len(bt) == 20
        bt.check_invariants()

    def test_mass_delete_keeps_invariants(self):
        rng = random.Random(5)
        bt = fresh(order=4)
        items = [(rng.randrange(50), i) for i in range(300)]
        for t in items:
            bt.insert(t)
        rng.shuffle(items)
        for t in items[:290]:
            assert bt.delete(t)
            bt.check_invariants()
        assert sorted(bt.scan()) == sorted(items[290:])


class TestUpdates:
    def test_modify_in_situ(self):
        bt = fresh()
        for k in range(10):
            bt.insert((k, 0))
        changed = bt.modify_tuples(
            bt.range_search(3, 5), lambda ts: ((k, v + 1) for k, v in ts)
        )
        assert changed == 3
        assert list(bt.range_search(3, 5)) == [(3, 1), (4, 1), (5, 1)]

    def test_modify_must_not_change_key(self):
        bt = fresh()
        bt.insert((1, 0))
        with pytest.raises(StorageError):
            bt.modify_tuples(bt.exact_search(1), lambda ts: ((9, v) for _, v in ts))

    def test_re_insert_moves_to_new_position(self):
        # The paper's key-update example: pop := pop * 1.1
        bt = fresh()
        for k in [10, 20, 30]:
            bt.insert((k, f"v{k}"))
        bt.re_insert_tuples(
            bt.exact_search(10), lambda ts: ((k * 10, v) for k, v in ts)
        )
        assert [t[0] for t in bt.scan()] == [20, 30, 100]
        bt.check_invariants()

    def test_stream_insert(self):
        bt = fresh()
        bt.stream_insert((k, k) for k in range(100))
        assert len(bt) == 100
        bt.check_invariants()


class TestIOAccounting:
    def test_range_search_reads_fewer_pages_than_scan(self):
        pages = PageManager()
        bt = BTree(key=lambda t: t[0], order=8, pages=pages)
        for k in range(2000):
            bt.insert((k, k))
        with pages.measure() as scan:
            list(bt.scan())
        with pages.measure() as ranged:
            list(bt.range_search(100, 110))
        assert ranged.delta.reads < scan.delta.reads / 5


class TestBulkLoad:
    def test_requires_empty_tree(self):
        bt = fresh()
        bt.insert((1, 1))
        with pytest.raises(StorageError):
            bt.bulk_load([(2, 2)])

    def test_equivalent_to_inserts(self):
        rng = random.Random(3)
        items = [(rng.randrange(40), i) for i in range(500)]
        loaded = fresh(order=8)
        loaded.bulk_load(items)
        looped = fresh(order=8)
        looped.stream_insert(items)
        loaded.check_invariants()
        assert sorted(loaded.scan()) == sorted(looped.scan())
        assert len(loaded) == len(looped)

    def test_fewer_page_writes_than_inserts(self):
        items = [(k, k) for k in range(2000)]
        pm1 = PageManager()
        bt1 = BTree(key=lambda t: t[0], order=16, pages=pm1)
        bt1.bulk_load(items)
        pm2 = PageManager()
        bt2 = BTree(key=lambda t: t[0], order=16, pages=pm2)
        bt2.stream_insert(items)
        assert pm1.stats.writes * 5 < pm2.stats.writes

    def test_loaded_tree_is_fully_mutable(self):
        bt = fresh(order=4)
        bt.bulk_load([(k, k) for k in range(100)])
        for k in range(0, 100, 2):
            assert bt.delete((k, k))
        bt.check_invariants()
        assert len(bt) == 50


keys = st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=200)


class TestProperties:
    @given(keys, st.integers(min_value=3, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_scan_equals_sorted_inserts(self, ks, order):
        bt = BTree(key=lambda t: t[0], order=order, pages=PageManager())
        items = [(k, i) for i, k in enumerate(ks)]
        for t in items:
            bt.insert(t)
        bt.check_invariants()
        assert sorted(t[0] for t in bt.scan()) == sorted(ks)
        assert len(bt) == len(ks)

    @given(keys, st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_range_agrees_with_reference(self, ks, a, b):
        lo, hi = min(a, b), max(a, b)
        bt = BTree(key=lambda t: t[0], order=4, pages=PageManager())
        for i, k in enumerate(ks):
            bt.insert((k, i))
        got = sorted(t[0] for t in bt.range_search(lo, hi))
        expected = sorted(k for k in ks if lo <= k <= hi)
        assert got == expected

    @given(keys, st.integers(min_value=3, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_bulk_load_property(self, ks, order):
        bt = BTree(key=lambda t: t[0], order=order, pages=PageManager())
        items = [(k, i) for i, k in enumerate(ks)]
        bt.bulk_load(items)
        if items:
            bt.check_invariants()
        assert sorted(bt.scan()) == sorted(items)

    @given(keys)
    @settings(max_examples=40, deadline=None)
    def test_insert_delete_roundtrip(self, ks):
        bt = BTree(key=lambda t: t[0], order=4, pages=PageManager())
        items = [(k, i) for i, k in enumerate(ks)]
        for t in items:
            bt.insert(t)
        rng = random.Random(1)
        to_delete = items[: len(items) // 2]
        rng.shuffle(to_delete)
        for t in to_delete:
            assert bt.delete(t)
        bt.check_invariants()
        remaining = sorted(set(items) - set(to_delete))
        assert sorted(bt.scan()) == remaining
