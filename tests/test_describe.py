"""Signature introspection: describe_signature renders the paper layout."""

import pytest

from repro.models.relational import relational_model
from repro.spec import describe_operator, describe_signature, parse_spec


@pytest.fixture()
def sos():
    return relational_model()[0]


class TestDescribe:
    def test_kinds_line(self, sos):
        text = describe_signature(sos)
        assert text.startswith("kinds ")
        assert "REL" in text.splitlines()[0]

    def test_constructor_lines(self, sos):
        text = describe_signature(sos)
        assert "-> DATA" in text
        assert "TUPLE -> REL   rel" in text

    def test_operator_lines(self, sos):
        text = describe_signature(sos)
        assert "forall rel: rel(tuple) in REL." in text
        assert "syntax _ #[ _ ]" in text
        assert "attribute access" in text

    def test_update_arrow(self, sos):
        spec = sos.operators("insert")[0]
        assert "~>" in describe_operator(spec)

    def test_type_operator_result(self, sos):
        spec = sos.operators("join")[0]
        assert "join: REL" in describe_operator(spec)

    def test_level_filter(self):
        from repro.rep.model import representation_model

        sos, _ = representation_model()
        rep_only = describe_signature(sos, level="rep")
        assert "search_join" in rep_only
        assert "mktuple" not in rep_only  # hybrid

    def test_description_reparses(self, sos):
        """The rendered constant constructors and simple operators round-trip
        through the spec parser (smoke-level: the spec loads without error)."""
        spec_text = """
kinds IDENT, DATA, TUPLE, REL

type constructors
    -> IDENT   ident
    -> DATA    int, real, string, bool
    (ident x DATA)+ -> TUPLE   tuple
    TUPLE -> REL   rel

operators
    forall rel: rel(tuple) in REL.
        rel x (tuple -> bool) -> rel   select   syntax _ #[ _ ]
"""
        reparsed = parse_spec(spec_text)
        rendered = describe_signature(reparsed)
        assert "select" in rendered
