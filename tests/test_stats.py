"""The statistics catalog: histograms, ``analyze``, maintenance, feedback."""

from __future__ import annotations

import pytest

from repro.errors import SOSError
from repro.stats.analyze import analyze_objects, related_stats
from repro.stats.feedback import q_error
from repro.stats.model import (
    AttributeStats,
    EquiDepthHistogram,
    RelationStats,
    StatsCatalog,
)


class TestEquiDepthHistogram:
    def test_build_shape(self):
        hist = EquiDepthHistogram.build(list(range(100)))
        assert hist.total == 100
        assert hist.buckets == 16
        assert hist.edges[0] == 0
        assert hist.edges[-1] == 99
        assert sum(hist.counts) == 100

    def test_fraction_le_interpolates(self):
        hist = EquiDepthHistogram.build(list(range(100)))
        assert hist.fraction_le(-1) == 0.0
        assert hist.fraction_le(99) == 1.0
        assert hist.fraction_le(49) == pytest.approx(0.5, abs=0.05)

    def test_fraction_between(self):
        hist = EquiDepthHistogram.build(list(range(100)))
        assert hist.fraction_between(25, 74) == pytest.approx(0.5, abs=0.06)
        assert hist.fraction_between(None, None) == 1.0
        assert hist.fraction_between(200, None) == 0.0

    def test_empty_and_unorderable_build_to_none(self):
        assert EquiDepthHistogram.build([]) is None
        assert EquiDepthHistogram.build([1, "a", 2]) is None

    def test_single_value_and_duplicates(self):
        hist = EquiDepthHistogram.build([5] * 10)
        assert hist.fraction_at(5) == pytest.approx(1.0)
        assert hist.fraction_le(5) == 1.0
        assert hist.fraction_le(4) == 0.0
        single = EquiDepthHistogram.build([3])
        assert single.buckets == 1
        assert single.fraction_le(3) == 1.0

    def test_strings_are_orderable_but_not_subtractable(self):
        hist = EquiDepthHistogram.build(["ant", "bee", "cat", "dog"])
        assert hist is not None
        assert 0.0 <= hist.fraction_le("bee") <= 1.0


class TestAttributeStats:
    def test_selectivity_eq(self):
        hist = EquiDepthHistogram.build(list(range(10)))
        a = AttributeStats(
            "x", count=10, distinct=10, min=0, max=9, histogram=hist
        )
        assert a.selectivity_eq(5) == pytest.approx(0.1)
        # Outside the observed range: at most one row's worth.
        assert a.selectivity_eq(999) == pytest.approx(0.1)
        empty = AttributeStats("x", count=0, distinct=0)
        assert empty.selectivity_eq(5) is None

    def test_selectivity_range_requires_histogram(self):
        bare = AttributeStats("x", count=10, distinct=10)
        assert bare.selectivity_range(1, 5) is None


class TestStatsCatalog:
    def _entry(self, name="r", rows=40):
        return RelationStats(name=name, row_count=rows, analyzed_rows=rows)

    def test_put_get_discard(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        assert "r" in catalog
        assert catalog.get("r").row_count == 40
        catalog.discard("r")
        assert catalog.get("r") is None

    def test_note_rowcount_copy_on_write(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        before = catalog.get("r")
        catalog.note_rowcount("r", 41)
        assert catalog.get("r").row_count == 41
        assert before.row_count == 40  # the old entry is untouched
        catalog.note_rowcount("ghost", 7)  # unanalyzed: silently ignored

    def test_staleness_threshold(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        catalog.note_rowcount("r", 45)
        assert not catalog.get("r").stale  # 12.5% drift
        catalog.note_rowcount("r", 60)
        assert catalog.get("r").stale  # 50% drift

    def test_record_observed_ewma(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        catalog.record_observed("r", "pred", 0.2)
        assert catalog.get("r").observed["pred"] == pytest.approx(0.2)
        catalog.record_observed("r", "pred", 0.4)
        assert catalog.get("r").observed["pred"] == pytest.approx(0.3)

    def test_snapshot_restore(self):
        catalog = StatsCatalog()
        catalog.put(self._entry())
        snap = catalog.snapshot()
        catalog.note_rowcount("r", 999)
        catalog.put(self._entry("s"))
        catalog.restore(snap)
        assert catalog.get("r").row_count == 40
        assert catalog.get("s") is None


class TestAnalyzeStatement:
    def test_parse_analyze(self, loaded_system):
        from repro.lang.parser import AnalyzeStmt

        parser = loaded_system.interpreter.make_parser()
        bare = parser.parse_statement("analyze")
        assert isinstance(bare, AnalyzeStmt)
        assert bare.names == ()
        named = parser.parse_statement("analyze cities, states")
        assert named.names == ("cities", "states")

    def test_parse_rejects_trailing_garbage(self, loaded_system):
        parser = loaded_system.interpreter.make_parser()
        with pytest.raises(SOSError):
            parser.parse_statement("analyze cities states")

    def test_analyze_resolves_model_name_to_representation(
        self, loaded_system
    ):
        result = loaded_system.run_one("analyze cities")
        assert result.kind == "analyze"
        assert "cities_rep" in result.value
        entry = loaded_system.database.stats.get("cities_rep")
        assert entry.row_count == 40
        assert entry.analyzed_rows == 40
        assert entry.key_attr == "pop"
        assert entry.structure["kind"] == "btree"
        assert entry.structure["pages"] >= 1
        pop = entry.attr("pop")
        assert pop.count == 40
        assert pop.histogram is not None
        assert pop.min <= pop.max

    def test_analyze_everything(self, loaded_system):
        result = loaded_system.run_one("analyze")
        assert {"cities_rep", "states_rep"} <= set(result.value)
        # The rep catalog itself is not a data structure to analyze.
        assert "rep" not in result.value

    def test_analyze_unknown_object_fails(self, loaded_system):
        with pytest.raises(SOSError):
            loaded_system.run_one("analyze ghost")

    def test_analyze_object_with_no_representation_fails(self, loaded_system):
        loaded_system.run_one("create lonely : int")
        with pytest.raises(SOSError):
            loaded_system.run_one("analyze lonely")

    def test_related_stats_lookup(self, loaded_system):
        loaded_system.run_one("analyze cities")
        db = loaded_system.database
        via_model = related_stats(db, "cities")
        assert [e.name for e in via_model] == ["cities_rep"]
        via_rep = related_stats(db, "cities_rep")
        assert [e.name for e in via_rep] == ["cities_rep"]
        assert related_stats(db, "states") == []


class TestMaintenance:
    def test_update_keeps_rowcount_current(self, loaded_system):
        loaded_system.run_one("analyze cities")
        loaded_system.run_one(
            'update cities := insert(cities, mktuple[<(cname, "new"), '
            "(center, pt(1, 1)), (pop, 123)>])"
        )
        entry = loaded_system.database.stats.get("cities_rep")
        assert entry.row_count == 41
        assert entry.analyzed_rows == 40
        assert not entry.stale

    def test_failed_statement_rolls_stats_back(self, loaded_system):
        from repro.errors import UpdateError
        from repro.system.transactions import statement_transaction

        db = loaded_system.database
        analyze_objects(db, ["cities"])
        with pytest.raises(UpdateError):
            with statement_transaction(db):
                analyze_objects(db, ["states"])
                db.stats.note_rowcount("cities_rep", 999)
                raise UpdateError("boom")
        assert db.stats.get("cities_rep").row_count == 40
        assert db.stats.get("states_rep") is None

    def test_drop_discards_stats(self, loaded_system):
        loaded_system.run_one("analyze cities")
        db = loaded_system.database
        db.drop("cities_rep")
        assert db.stats.get("cities_rep") is None


class TestFeedback:
    def test_q_error(self):
        assert q_error(10, 10) == 1.0
        assert q_error(20, 5) == 4.0
        assert q_error(5, 20) == 4.0
        assert q_error(0, 5) == 5.0  # zero floored at one row

    def test_fold_observed_records_filter_selectivity(self, loaded_system):
        loaded_system.run_one("analyze cities")
        loaded_system.set_tracing(True)
        loaded_system.set_feedback(True)
        result = loaded_system.query("cities_rep feed filter[pop < 5000] count")
        observed = loaded_system.database.stats.get("cities_rep").observed
        assert len(observed) == 1
        (key, sel), = observed.items()
        assert "pop" in key
        assert sel == pytest.approx(result.value / 40)

    def test_feedback_needs_tracing(self, loaded_system):
        loaded_system.run_one("analyze cities")
        loaded_system.set_feedback(True)  # tracing stays off: no metrics
        loaded_system.query("cities_rep feed filter[pop < 5000] count")
        assert loaded_system.database.stats.get("cities_rep").observed == {}


class TestSessionApi:
    @pytest.fixture()
    def session(self):
        from repro.api import connect

        s = connect()
        s.run(
            """
type city = tuple(<(cname, string), (pop, int)>)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
"""
        )
        for i in range(8):
            s.run_one(
                f'update cities := insert(cities, mktuple[<(cname, "c{i}"), '
                f"(pop, {1000 * (i + 1)})>])"
            )
        return s

    def test_session_analyze_and_stats(self, session):
        result = session.analyze("cities")
        assert result.kind == "analyze"
        stats = session.stats("cities")
        assert set(stats) == {"cities_rep"}
        d = stats["cities_rep"]
        assert d["row_count"] == 8
        assert d["key_attr"] == "pop"
        assert "histogram" in d["attributes"]["pop"]

    def test_stats_before_analyze_is_empty(self, session):
        assert session.stats("cities") == {}
