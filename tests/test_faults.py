"""Deterministic fault injection and the crash-consistency property.

The core property, asserted for **every** registered fault site: take a
mixed Section-6 session, inject a fault at the Nth hit of the site during
one more statement, and the database state (catalog, aliases, every object
value) is exactly the pre-statement state; clearing the fault and re-running
the same statement succeeds and changes the state.
"""

import pytest

from repro.errors import SOSError
from repro.system import build_relational_system
from repro.system.transactions import statement_transaction
from repro.testing import (
    FAULT_SITES,
    MVCC_FAULT_SITES,
    WAL_FAULT_SITES,
    FaultPlan,
    InjectedFault,
    arm,
    clear_faults,
    database_fingerprint,
    fault_point,
    inject,
)


def city(name, x, y, pop):
    return f'mktuple[<(cname, "{name}"), (center, pt({x}, {y})), (pop, {pop})>]'


def state(name, i):
    return (
        f'mktuple[<(sname, "{name}"), '
        f"(region, region_box({i * 20}, 0, {i * 20 + 20}, 100))>]"
    )


@pytest.fixture()
def session():
    """A mixed Section-6 session: model relations over a B-tree and an
    LSD-tree, scratch representation structures, a model-level relation
    executed directly, and the ``rep`` catalog."""
    system = build_relational_system()
    system.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
create scratch_srel : srel(city)
create scratch_tid : tidrel(city)
create aux : rel(city)
create aux_rep : btree(city, pop, int)
"""
    )
    for i, pop in enumerate([100, 5000, 20000, 7, 7]):
        system.run_one(f"update cities := insert(cities, {city('c%d' % i, i, i, pop)})")
    for i in range(3):
        system.run_one(f"update states := insert(states, {state('s%d' % i, i)})")
    system.run_one("update scratch_tid := stream_insert(scratch_tid, cities_rep feed)")
    # a model-level relation executed directly by the plain interpreter
    system.interpreter.run_one("create mrel : rel(city)")
    for i, pop in enumerate([7, 7, 400]):
        system.interpreter.run_one(
            f"update mrel := insert(mrel, {city('m%d' % i, i, i, pop)})"
        )
    return system


# --------------------------------------------------------------------------
# Probes: for each fault site, one more statement (or protected operation)
# of the session that hits the site — at the Nth hit, so several probes
# fault *mid-mutation* and leave genuine partial state for the rollback.
# --------------------------------------------------------------------------


def _stmt(runner: str, text: str):
    def probe(system):
        target = system if runner == "system" else system.interpreter
        target.run_one(text)

    return probe


def _tid_delete(system):
    db = system.database
    with statement_transaction(db):
        db.protect("scratch_tid")
        heap = db.objects["scratch_tid"].value
        for tid, _ in list(heap.scan_with_tids())[:2]:
            heap.delete(tid)


def _tid_replace(system):
    db = system.database
    with statement_transaction(db):
        db.protect("scratch_tid")
        heap = db.objects["scratch_tid"].value
        (tid_a, val_a), (tid_b, val_b) = list(heap.scan_with_tids())[:2]
        heap.replace(tid_a, val_b)
        heap.replace(tid_b, val_a)


INSERT_X = f"update cities := insert(cities, {city('x', 9, 9, 4242)})"

PROBES = {
    "btree.insert": (1, _stmt("system", INSERT_X)),
    "btree.delete": (2, _stmt("system", "update cities := delete(cities, pop <= 10000)")),
    "btree.modify": (
        2,
        _stmt("system", 'update cities := modify(cities, pop = 7, cname, "m")'),
    ),
    "btree.re_insert": (
        2,
        _stmt("system", "update cities := modify(cities, pop = 7, pop, pop * 3)"),
    ),
    "lsdtree.insert": (1, _stmt("system", f"update states := insert(states, {state('sx', 4)})")),
    "lsdtree.delete": (
        2,
        _stmt("system", "update states_rep := delete(states_rep, states_rep feed)"),
    ),
    "tidrel.insert": (
        3,
        _stmt("system", "update scratch_tid := stream_insert(scratch_tid, cities_rep feed)"),
    ),
    "tidrel.delete": (2, _tid_delete),
    "tidrel.replace": (2, _tid_replace),
    "srel.append": (
        3,
        _stmt("system", "update scratch_srel := stream_insert(scratch_srel, cities_rep feed)"),
    ),
    "catalog.insert": (1, _stmt("system", "update rep := insert(rep, aux, aux_rep)")),
    "catalog.remove": (1, _stmt("system", "update rep := cat_remove(rep, cities, cities_rep)")),
    "rel.insert": (1, _stmt("interp", f"update mrel := insert(mrel, {city('y', 8, 8, 99)})")),
    "rel.delete": (1, _stmt("interp", "update mrel := delete(mrel, pop <= 10000)")),
    "rel.modify": (1, _stmt("interp", 'update mrel := modify(mrel, pop = 7, cname, "q")')),
    "evaluator.apply": (2, _stmt("system", INSERT_X)),
    "database.set_value": (1, _stmt("system", INSERT_X)),
    "optimizer.rule": (1, _stmt("system", INSERT_X)),
}


def test_every_registered_site_has_a_probe():
    # The durability-layer and multi-session sites need a durable session
    # or a server to fire; their crash matrices live in
    # tests/test_crash_matrix.py (and tests/test_server.py for the ack).
    assert set(PROBES) == (
        set(FAULT_SITES) - set(WAL_FAULT_SITES) - set(MVCC_FAULT_SITES)
    )


@pytest.mark.parametrize(
    "site",
    sorted(set(FAULT_SITES) - set(WAL_FAULT_SITES) - set(MVCC_FAULT_SITES)),
)
def test_crash_consistency_at_every_site(session, site):
    at, probe = PROBES[site]
    before = database_fingerprint(session.database)
    with inject(site, at=at) as plan:
        with pytest.raises(InjectedFault):
            probe(session)
        assert plan.triggered
    # the statement had zero partial effect ...
    assert database_fingerprint(session.database) == before
    # ... and once the fault is cleared, the same statement goes through
    # and actually changes the state.
    probe(session)
    assert database_fingerprint(session.database) != before


# --------------------------------------------------------------------------
# Harness mechanics
# --------------------------------------------------------------------------


class TestFaultHarness:
    def teardown_method(self):
        clear_faults()

    def test_disarmed_fault_point_is_a_no_op(self):
        fault_point("btree.insert")  # nothing armed: must not raise

    def test_plan_counts_hits_and_fires_on_nth(self):
        plan = FaultPlan("btree.insert", at=3)
        arm(plan)
        fault_point("btree.insert")
        fault_point("btree.insert")
        with pytest.raises(InjectedFault):
            fault_point("btree.insert")
        assert plan.hits == 3
        assert plan.triggered

    def test_fires_only_once(self):
        arm(FaultPlan("btree.insert", at=1))
        with pytest.raises(InjectedFault):
            fault_point("btree.insert")
        fault_point("btree.insert")  # already triggered: passes through

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            arm(FaultPlan("nonexistent.site"))
        with pytest.raises(ValueError):
            with inject("nonexistent.site"):
                pass

    def test_other_sites_unaffected(self):
        arm(FaultPlan("btree.insert", at=1))
        fault_point("btree.delete")
        fault_point("srel.append")

    def test_inject_clears_on_exit(self):
        with pytest.raises(InjectedFault):
            with inject("btree.insert"):
                fault_point("btree.insert")
        fault_point("btree.insert")

    def test_injected_fault_is_an_soserror(self):
        assert issubclass(InjectedFault, SOSError)
