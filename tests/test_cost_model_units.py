"""Unit shapes of the structural cost model."""

import pytest

from repro.optimizer.cost import MODEL_OP_PENALTY, estimate


@pytest.fixture()
def db(loaded_system):
    return loaded_system.database


def plan(loaded_system, text):
    statement = loaded_system.interpreter.make_parser().parse_statement(
        "query " + text
    )
    return loaded_system.database.typechecker.check(statement.expr)


class TestShapes:
    def test_feed_cost_equals_size(self, loaded_system, db):
        assert estimate(plan(loaded_system, "cities_rep feed"), db) == 40.0

    def test_filter_adds_per_tuple_cost(self, loaded_system, db):
        feed = estimate(plan(loaded_system, "cities_rep feed"), db)
        filtered = estimate(
            plan(loaded_system, "cities_rep feed filter[pop >= 1]"), db
        )
        assert filtered > feed

    def test_head_caps_cost(self, loaded_system, db):
        full = estimate(plan(loaded_system, "cities_rep feed collect"), db)
        headed = estimate(
            plan(loaded_system, "cities_rep feed head[3] collect"), db
        )
        assert headed < full

    def test_exact_cheaper_than_range(self, loaded_system, db):
        exact = estimate(plan(loaded_system, "cities_rep exact[5]"), db)
        ranged = estimate(plan(loaded_system, "cities_rep range[0, 5]"), db)
        assert exact < ranged

    def test_hash_join_cheaper_than_merge_join(self, loaded_system, db):
        merge = estimate(
            plan(
                loaded_system,
                "(cities_rep feed) (states_rep feed) merge_join[cname, sname]",
            ),
            db,
        )
        hashed = estimate(
            plan(
                loaded_system,
                "(cities_rep feed) (states_rep feed) hash_join[cname, sname]",
            ),
            db,
        )
        assert hashed < merge

    def test_search_join_multiplies_inner_cost(self, loaded_system, db):
        joined = estimate(
            plan(
                loaded_system,
                "cities_rep feed "
                "fun (c: city) states_rep feed filter[fun (s: state) c center inside s region] "
                "search_join",
            ),
            db,
        )
        single_inner = estimate(plan(loaded_system, "states_rep feed"), db)
        assert joined > 40 * single_inner  # 40 outer tuples

    def test_model_penalty_dominates(self, loaded_system, db):
        model = estimate(plan(loaded_system, "cities select[pop >= 1]"), db)
        assert model >= MODEL_OP_PENALTY

    def test_hybrid_arithmetic_is_cheap(self, loaded_system, db):
        assert estimate(plan(loaded_system, "1 + 2 * 3"), db) < 10
