"""Property-based tests across the stack (hypothesis).

These check semantic invariants on randomly generated schemas, data and
predicates: algebra laws of the relational operators, equivalence of the
translated representation plans with a Python reference implementation, and
stability of parse/print round trips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra import Evaluator
from repro.core.terms import Apply, ListTerm, Literal, Var, same_term
from repro.core.typecheck import TypeChecker
from repro.core.types import TypeApp, rel_type, tuple_type
from repro.models.relational import make_relation, relational_model

INT = TypeApp("int")
STRING = TypeApp("string")

ATTRS = ("alpha", "beta", "gamma")

SOS, ALGEBRA = relational_model()

ROW = tuple_type([("alpha", INT), ("beta", INT), ("gamma", STRING)])
ROWS_REL = rel_type(ROW)

rows_strategy = st.lists(
    st.tuples(
        st.integers(-50, 50), st.integers(-50, 50), st.sampled_from("abcde")
    ),
    max_size=40,
)

comparison = st.sampled_from(["<", "<=", "=", "!=", ">=", ">"])
int_attr = st.sampled_from(["alpha", "beta"])
threshold = st.integers(-60, 60)

_PY_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
}


def _relation(rows):
    return make_relation(
        ROWS_REL,
        [{"alpha": a, "beta": b, "gamma": c} for a, b, c in rows],
    )


def _env(rows):
    rel = _relation(rows)
    tc = TypeChecker(SOS, object_types={"r": ROWS_REL}.get)
    ev = Evaluator(ALGEBRA, resolver={"r": rel}.get)
    return tc, ev, rel


def _select(attr, op, value):
    return Apply(
        "select", (Var("r"), Apply(op, (Var(attr), Literal(value))))
    )


class TestSelectionSemantics:
    @given(rows_strategy, int_attr, comparison, threshold)
    @settings(max_examples=60, deadline=None)
    def test_select_matches_reference(self, rows, attr, op, value):
        tc, ev, _ = _env(rows)
        out = ev.eval(tc.check(_select(attr, op, value)))
        expected = [r for r in rows if _PY_OPS[op](r[ATTRS.index(attr)], value)]
        assert sorted(t.attr(attr) for t in out) == sorted(
            r[ATTRS.index(attr)] for r in expected
        )

    @given(rows_strategy, int_attr, threshold)
    @settings(max_examples=40, deadline=None)
    def test_select_is_idempotent(self, rows, attr, value):
        tc, ev, _ = _env(rows)
        once = ev.eval(tc.check(_select(attr, ">", value)))
        inner = _select(attr, ">", value)
        twice_term = Apply(
            "select", (inner, Apply(">", (Var(attr), Literal(value))))
        )
        twice = ev.eval(tc.check(twice_term))
        assert sorted(map(repr, once.rows)) == sorted(map(repr, twice.rows))

    @given(rows_strategy, int_attr, threshold)
    @settings(max_examples=40, deadline=None)
    def test_select_partitions(self, rows, attr, value):
        """select[p] and select[not p] partition the relation."""
        tc, ev, rel = _env(rows)
        pos = ev.eval(tc.check(_select(attr, ">", value)))
        neg = ev.eval(tc.check(_select(attr, "<=", value)))
        assert len(pos) + len(neg) == len(rows)


class TestUnionSemantics:
    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_union_counts_add(self, rows):
        tc, ev, rel = _env(rows)
        term = tc.check(Apply("union", (ListTerm((Var("r"), Var("r"))),)))
        assert len(ev.eval(term)) == 2 * len(rows)


class TestTranslatedPlans:
    """Model selection translated to the B-tree agrees with the reference."""

    @given(rows_strategy, comparison, threshold)
    @settings(max_examples=25, deadline=None)
    def test_translation_is_semantics_preserving(self, rows, op, value):
        from repro.system import build_relational_system

        system = build_relational_system()
        system.run(
            """
type row = tuple(<(alpha, int), (beta, int), (gamma, string)>)
create r : rel(row)
create r_rep : btree(row, alpha, int)
update rep := insert(rep, r, r_rep)
"""
        )
        bt = system.database.objects["r_rep"].value
        row_t = system.database.aliases["row"]
        from repro.models.relational import make_tuple

        for a, b, c in rows:
            bt.insert(make_tuple(row_t, alpha=a, beta=b, gamma=c))
        result = system.run_one(f"query r select[alpha {op} {value}]")
        expected = sorted(r[0] for r in rows if _PY_OPS[op](r[0], value))
        assert sorted(t.attr("alpha") for t in result.value) == expected


class TestPrintParseRoundTrip:
    @given(rows_strategy.filter(bool), int_attr, comparison, threshold)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_after_typecheck(self, rows, attr, op, value):
        from repro.lang.parser import Parser
        from repro.lang.printer import format_concrete

        tc, ev, _ = _env(rows)
        term = tc.check(_select(attr, op, value))
        printed = format_concrete(term, SOS)
        parser = Parser(SOS, aliases={"row": ROW}, is_object=lambda n: n == "r")
        reparsed = tc.check(parser.parse_expression(printed))
        assert same_term(term, reparsed)
        assert sorted(map(repr, ev.eval(term).rows)) == sorted(
            map(repr, ev.eval(reparsed).rows)
        )
