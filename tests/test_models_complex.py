"""The complex object model (experiment E3, paper Section 2.1)."""

import pytest

from repro.core.algebra import Evaluator, TupleValue
from repro.core.typecheck import TypeChecker
from repro.core.terms import Apply, Fun, ListTerm, Literal, Var
from repro.core.types import TypeApp, tuple_type
from repro.errors import NoMatchingOperator
from repro.models.complex_objects import (
    BOTTOM,
    TOP,
    ObjectSet,
    co_subtype,
    complex_object_model,
)

INT = TypeApp("int")
STRING = TypeApp("string")

# The paper's persons type:
# tuple(<(name, string), (children, set(string)),
#        (address, tuple(<(city, string), (street, string)>))>)
ADDRESS = tuple_type([("city", STRING), ("street", STRING)])
PERSON = tuple_type(
    [("name", STRING), ("children", TypeApp("set", (STRING,))), ("address", ADDRESS)]
)


@pytest.fixture()
def env():
    sos, algebra = complex_object_model()
    sos.type_system.check_type(PERSON)
    children = ObjectSet(TypeApp("set", (STRING,)), ["kim", "lee"])
    person = TupleValue(PERSON, ("ann", children, TupleValue(ADDRESS, ("Hagen", "Main"))))
    tc = TypeChecker(sos, object_types={"p": PERSON}.get)
    ev = Evaluator(algebra, resolver={"p": person}.get)
    return sos, algebra, tc, ev, person


class TestTypeSystem:
    def test_persons_type_well_formed(self, env):
        sos, *_ = env
        sos.type_system.check_type(PERSON)
        assert sos.type_system.kind_of(PERSON).name == "OBJ"

    def test_everything_lives_in_obj(self, env):
        sos, *_ = env
        for t in (INT, TypeApp("set", (INT,)), BOTTOM, TOP, PERSON):
            assert sos.type_system.has_kind(t, "OBJ")

    def test_deep_nesting(self, env):
        sos, *_ = env
        deep = TypeApp("set", (TypeApp("set", (PERSON,)),))
        sos.type_system.check_type(deep)


class TestCoSubtype:
    def test_bottom_below_everything(self):
        assert co_subtype(BOTTOM, INT)
        assert co_subtype(BOTTOM, PERSON)
        assert co_subtype(BOTTOM, TOP)

    def test_top_above_everything(self):
        assert co_subtype(INT, TOP)
        assert co_subtype(PERSON, TOP)

    def test_reflexive(self):
        assert co_subtype(PERSON, PERSON)

    def test_width_subtyping(self):
        wide = tuple_type([("name", STRING), ("age", INT)])
        narrow = tuple_type([("name", STRING)])
        assert co_subtype(wide, narrow)
        assert not co_subtype(narrow, wide)

    def test_depth_subtyping(self):
        specific = tuple_type([("x", BOTTOM)])
        general = tuple_type([("x", INT)])
        assert co_subtype(specific, general)

    def test_set_covariance(self):
        assert co_subtype(TypeApp("set", (BOTTOM,)), TypeApp("set", (INT,)))
        assert not co_subtype(TypeApp("set", (INT,)), TypeApp("set", (STRING,)))

    def test_atomic_unrelated(self):
        assert not co_subtype(INT, STRING)


class TestSetAlgebra:
    def test_mkset_and_card(self, env):
        _, _, tc, ev, _ = env
        term = tc.check(
            Apply("card", (Apply("mkset", (ListTerm((Literal(1), Literal(2), Literal(2))),)),))
        )
        assert ev.eval(term) == 2  # sets deduplicate

    def test_mkset_mixed_types_rejected(self, env):
        _, _, tc, ev, _ = env
        with pytest.raises(NoMatchingOperator):
            tc.check(Apply("mkset", (ListTerm((Literal(1), Literal("a"))),)))

    def test_member(self, env):
        _, _, tc, ev, _ = env
        term = tc.check(
            Apply(
                "member",
                (Literal("kim"), Apply("children", (Var("p"),))),
            )
        )
        assert ev.eval(term) is True

    def test_filter_set(self, env):
        _, _, tc, ev, _ = env
        term = tc.check(
            Apply(
                "filter_set",
                (
                    Apply("mkset", (ListTerm((Literal(1), Literal(5), Literal(9))),)),
                    Fun((("x", INT),), Apply(">", (Var("x"), Literal(3)))),
                ),
            )
        )
        assert sorted(ev.eval(term)) == [5, 9]

    def test_set_union(self, env):
        _, _, tc, ev, _ = env
        a = Apply("mkset", (ListTerm((Literal(1), Literal(2))),))
        b = Apply("mkset", (ListTerm((Literal(2), Literal(3))),))
        term = tc.check(Apply("set_union", (a, b)))
        assert sorted(ev.eval(term)) == [1, 2, 3]

    def test_nested_attr_access(self, env):
        _, _, tc, ev, _ = env
        term = tc.check(Apply("city", (Apply("address", (Var("p"),)),)))
        assert ev.eval(term) == "Hagen"

    def test_carriers(self, env):
        _, algebra, *_ = env
        s = ObjectSet(TypeApp("set", (INT,)), [1, 2])
        assert algebra.check_value(s, TypeApp("set", (INT,)))
        assert not algebra.check_value(s, TypeApp("set", (STRING,)))
