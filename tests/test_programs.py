"""Whole programs through the plain interpreter (experiment E6, Section 2.4)."""

import pytest

from repro.catalog import Database
from repro.core.algebra import SecondOrderAlgebra
from repro.core.sos import SignatureBuilder
from repro.errors import CatalogError, ExecutionError, TypeCheckError, UpdateError
from repro.lang import Interpreter
from repro.models.base import add_base_level, register_base_carriers
from repro.models.relational import add_relational_level, register_relational_carriers


@pytest.fixture()
def interp():
    builder = SignatureBuilder()
    add_base_level(builder)
    add_relational_level(builder)
    sos = builder.build()
    algebra = SecondOrderAlgebra(sos)
    register_base_carriers(algebra)
    register_relational_carriers(algebra)
    return Interpreter(Database(sos, algebra))


CITIES_PROGRAM = """
type city = tuple(< (name, string), (pop, int), (country, string) >)
type city_rel = rel(city)
create cities : city_rel
update cities := insert(cities, mktuple[<(name, "Berlin"), (pop, 3500000), (country, "Germany")>])
update cities := insert(cities, mktuple[<(name, "Paris"), (pop, 2100000), (country, "France")>])
update cities := insert(cities, mktuple[<(name, "Hagen"), (pop, 210000), (country, "Germany")>])
"""


class TestPaperProgram:
    """The Section 2.4 example program."""

    def test_program_runs(self, interp):
        results = interp.run(CITIES_PROGRAM)
        assert [r.kind for r in results] == ["type"] * 2 + ["create"] + ["update"] * 3

    def test_query(self, interp):
        interp.run(CITIES_PROGRAM)
        result = interp.run_one("query cities select[pop > 1000000]")
        assert sorted(t.attr("name") for t in result.value.rows) == ["Berlin", "Paris"]

    def test_view_without_special_construct(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run(
            """
create french_cities : ( -> city_rel)
update french_cities := fun () cities select[country = "France"]
"""
        )
        result = interp.run_one("query french_cities select[pop > 1000000]")
        assert [t.attr("name") for t in result.value.rows] == ["Paris"]

    def test_view_reflects_base_updates(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run(
            """
create french_cities : ( -> city_rel)
update french_cities := fun () cities select[country = "France"]
update cities := insert(cities, mktuple[<(name, "Lyon"), (pop, 520000), (country, "France")>])
"""
        )
        result = interp.run_one("query french_cities select[pop > 0]")
        assert sorted(t.attr("name") for t in result.value.rows) == ["Lyon", "Paris"]

    def test_parameterized_view(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run(
            """
create cities_in : (string -> city_rel)
update cities_in := fun (c: string) cities select[country = c]
"""
        )
        result = interp.run_one('query cities_in("Germany")')
        assert sorted(t.attr("name") for t in result.value.rows) == ["Berlin", "Hagen"]

    def test_delete_statement(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run_one("delete cities")
        with pytest.raises(TypeCheckError):
            interp.run_one("query cities")


class TestUpdateSemantics:
    def test_update_function_first_arg_must_be_target(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run_one("create other : city_rel")
        with pytest.raises(UpdateError):
            interp.run_one(
                'update other := insert(cities, mktuple[<(name, "X"), (pop, 1), (country, "Y")>])'
            )

    def test_plain_assignment_update(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run_one("create copy : city_rel")
        interp.run_one("update copy := cities select[pop > 1000000]")
        assert len(interp.database.objects["copy"].value) == 2

    def test_update_value_must_match_type(self, interp):
        interp.run(CITIES_PROGRAM)
        with pytest.raises(TypeCheckError):
            interp.run_one("update cities := 42")

    def test_update_unknown_object(self, interp):
        with pytest.raises(CatalogError):
            interp.run_one("update ghost := 1")

    def test_create_duplicate_rejected(self, interp):
        interp.run(CITIES_PROGRAM)
        with pytest.raises(CatalogError):
            interp.run_one("create cities : city_rel")

    def test_relations_auto_initialize_empty(self, interp):
        interp.run_one("type t = tuple(<(a, int)>)")
        interp.run_one("create r : rel(t)")
        result = interp.run_one("query r")
        assert len(result.value.rows) == 0

    def test_view_object_starts_undefined(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run_one("create v : ( -> city_rel)")
        with pytest.raises(ExecutionError):
            interp.run_one("query v select[pop > 0]")

    def test_update_via_empty_constant(self, interp):
        interp.run(CITIES_PROGRAM)
        interp.run_one("update cities := empty")
        assert len(interp.database.objects["cities"].value) == 0
