"""The spatial join of paper Sections 4 and 5.

Builds the cities B-tree and the states LSD-tree (indexed by bounding boxes
of polygon regions), then answers ``cities states join[center inside
region]`` three ways:

1. hand-written representation plan with repeated *scans* of states;
2. hand-written plan with repeated LSD-tree *point searches*;
3. the model-level join, translated automatically by the Section 5 rule.

All three produce the same pairs; the simulated page I/O shows why the
optimizer prefers the index plan.

Run:  python examples/spatial_join.py
"""

import random
import time

from repro.storage.io import GLOBAL_PAGES
from repro.api import connect

N_CITIES = 300
N_STATES = 25


def build_system():
    system = connect()
    system.run(
        """
type city = tuple(<(cname, string), (center, point), (pop, int)>)
type state = tuple(<(sname, string), (region, pgon)>)
create cities : rel(city)
create states : rel(state)
create cities_rep : btree(city, pop, int)
create states_rep : lsdtree(state, fun (s: state) bbox(s region))
update rep := insert(rep, cities, cities_rep)
update rep := insert(rep, states, states_rep)
"""
    )
    rng = random.Random(1993)
    grid = 5  # 5 x 5 grid of state regions
    for i in range(N_STATES):
        x = (i % grid) * 200
        y = (i // grid) * 200
        system.run_one(
            f'update states := insert(states, mktuple[<(sname, "s{i}"), '
            f"(region, region_box({x}, {y}, {x + 200}, {y + 200}))>])"
        )
    for i in range(N_CITIES):
        x = round(rng.uniform(0, 1000), 1)
        y = round(rng.uniform(0, 1000), 1)
        system.run_one(
            f'update cities := insert(cities, mktuple[<(cname, "c{i}"), '
            f"(center, pt({x}, {y})), (pop, {rng.randrange(10 ** 6)})>])"
        )
    return system


def run_plan(system, title, text):
    before = GLOBAL_PAGES.stats.snapshot()
    start = time.perf_counter()
    result = system.run_one(text)
    elapsed = time.perf_counter() - start
    io = GLOBAL_PAGES.stats.delta(before)
    pairs = sorted((t.attr("cname"), t.attr("sname")) for t in result.value)
    print(f"{title:<28} pairs={len(pairs):4d}  time={elapsed * 1e3:7.1f} ms  "
          f"page reads={io.reads}")
    return pairs, result


def main() -> None:
    system = build_system()

    scan_pairs, _ = run_plan(
        system,
        "rep plan: repeated scan",
        """
query cities_rep feed
      fun (c: city) states_rep feed filter[fun (s: state) c center inside s region]
      search_join
""",
    )
    index_pairs, _ = run_plan(
        system,
        "rep plan: LSD point_search",
        """
query cities_rep feed
      fun (c: city) states_rep (c center) point_search
                    filter[fun (s: state) c center inside s region]
      search_join
""",
    )
    model_pairs, result = run_plan(
        system,
        "model join via optimizer",
        "query cities states join[center inside region]",
    )
    print("\nplans agree:", scan_pairs == index_pairs == model_pairs)
    print("rule fired:", result.fired)
    print("generated plan:\n ", result.generated_statement())


if __name__ == "__main__":
    main()
