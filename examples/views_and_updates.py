"""The Section 6 update session, statement by statement.

Shows the SOS system processing a mixed program: H(ybrid) statements execute
directly, M(odel) statements are translated through the optimizer into
R(epresentation) statements, which are printed like the paper's
``=>``-prefixed listing.

Run:  python examples/views_and_updates.py
"""

from repro.api import connect


def show(system, text):
    result = system.run_one(text.strip())
    tag = {"model": "M", "rep": "R", "hybrid": "H"}[result.level]
    print(f"{tag}  {text.strip()}")
    generated = result.generated_statement()
    if generated:
        print(f"=>   {generated}")
    return result


def main() -> None:
    system = connect()

    print("-- schema and representation (paper Section 6) --")
    show(system, "type city = tuple(<(cname, string), (center, point), (pop, int)>)")
    show(system, "create cities : rel(city)")
    show(system, "create cities_rep : btree(city, pop, int)")
    show(system, "update rep := insert(rep, cities, cities_rep)")

    print("\n-- tuple-at-a-time inserts --")
    show(system, "create c : city")
    show(system, 'update c := mktuple[<(cname, "Hagen"), (center, pt(5, 5)), (pop, 190000)>]')
    show(system, "update cities := insert(cities, c)")
    for name, pop in [("Berlin", 3500000), ("Paris", 2100000), ("Madras", 4300000), ("Tiny", 900)]:
        show(
            system,
            f'update cities := insert(cities, mktuple[<(cname, "{name}"), '
            f"(center, pt(1, 1)), (pop, {pop})>])",
        )

    print("\n-- delete by key range: victims found by a B-tree range search --")
    show(system, "update cities := delete(cities, pop <= 10000)")

    print("\n-- key update: translated to re_insert (delete + reinsert) --")
    show(system, 'update cities := modify(cities, cname = "Madras", pop, pop * 2)')

    print("\n-- non-key update: translated to in-situ modify --")
    show(system, 'update cities := modify(cities, pop >= 8000000, cname, "Chennai")')

    print("\n-- final state of the B-tree (key order) --")
    bt = system.database.objects["cities_rep"].value
    for t in bt.scan():
        print("  ", t)

    print("\n-- the rep catalog is an ordinary object --")
    for row in system.database.objects["rep"].value:
        print("  ", tuple(str(s) for s in row))


if __name__ == "__main__":
    main()
