"""Access paths beyond the paper's shown material.

Demonstrates the structures Section 4 mentions without definitions —
multi-attribute B-trees with prefix queries — plus secondary indexes over
TID relations with the clustered/unclustered trade-off made visible through
simulated page I/O.

Run:  python examples/access_paths.py
"""

import random

from repro.models.relational import make_tuple
from repro.storage.io import GLOBAL_PAGES
from repro.api import connect


def measure(system, title, text):
    before = GLOBAL_PAGES.stats.snapshot()
    result = system.run_one(text)
    reads = GLOBAL_PAGES.stats.delta(before).reads
    value = result.value
    if isinstance(value, (int, float)):
        n = round(value, 1)
    else:
        n = len(value)
    print(f"{title:<44} -> {n:>7}   page reads={reads}")
    return result


def main() -> None:
    system = connect()
    system.run(
        """
type order = tuple(<(country, string), (town, string), (price, int)>)
create orders_heap : tidrel(order)
create orders_idx : sindex(order, price, int)
create orders_geo : mbtree(order, <(country, string), (town, string)>)
create orders_clustered : btree(order, price, int)
"""
    )
    order_t = system.database.aliases["order"]
    heap = system.database.objects["orders_heap"].value
    geo = system.database.objects["orders_geo"].value
    clustered = system.database.objects["orders_clustered"].value
    rng = random.Random(7)
    countries = ["DE", "FR", "CH", "IT"]
    towns = ["north", "south", "east", "west"]
    for i in range(4000):
        row = make_tuple(
            order_t,
            country=rng.choice(countries),
            town=rng.choice(towns),
            price=rng.randrange(100_000),
        )
        heap.insert(row)
        geo.insert(row)
        clustered.insert(row)
    system.run_one("update orders_idx := build_index(orders_heap, price)")

    print("== multi-attribute B-tree: prefix queries ==")
    measure(system, 'orders_geo prefix[<"DE">] count', 'query orders_geo prefix[<"DE">] count')
    measure(
        system,
        'orders_geo prefix[<"DE", "north">] count',
        'query orders_geo prefix[<"DE", "north">] count',
    )

    print("\n== clustered vs unclustered vs scan (1% selectivity) ==")
    measure(system, "clustered range", "query orders_clustered range[99000, top] count")
    measure(system, "secondary index (TID fetches)", "query orders_idx sindex_range[99000, top] count")
    measure(
        system,
        "heap scan + filter",
        "query orders_heap feed filter[fun (o: order) o price >= 99000] count",
    )

    print("\n== the same at 50% selectivity: the unclustered index loses ==")
    measure(system, "clustered range", "query orders_clustered range[50000, top] count")
    measure(system, "secondary index (TID fetches)", "query orders_idx sindex_range[50000, top] count")
    measure(
        system,
        "heap scan + filter",
        "query orders_heap feed filter[fun (o: order) o price >= 50000] count",
    )

    print("\n== aggregation over streams ==")
    measure(system, "average price in DE/north", 'query orders_geo prefix[<"DE", "north">] avg_of[price]')


if __name__ == "__main__":
    main()
