"""Other data models in the same framework (paper Section 2.1).

The framework is a *meta-model*: the nested relational model (the books
example) and the complex object model (the persons example) are defined with
exactly the same machinery — kinds, type constructors, quantified operators.

Run:  python examples/nested_models.py
"""

from repro.core.algebra import Evaluator, Relation, TupleValue
from repro.core.terms import Apply, ListTerm, Literal, Var
from repro.core.typecheck import TypeChecker
from repro.core.types import TypeApp, format_type, rel_type, tuple_type
from repro.models.complex_objects import ObjectSet, complex_object_model, co_subtype
from repro.models.nested import nested_relational_model

INT = TypeApp("int")
STRING = TypeApp("string")


def nested_demo() -> None:
    print("== nested relational model: the books example ==")
    sos, algebra = nested_relational_model()

    author = tuple_type([("name", STRING), ("country", STRING)])
    authors_rel = rel_type(author)
    book = tuple_type(
        [("title", STRING), ("authors", authors_rel), ("publisher", STRING), ("year", INT)]
    )
    books_rel = rel_type(book)
    sos.type_system.check_type(books_rel)
    print("books type:", format_type(books_rel))

    def authors(*pairs):
        return Relation(authors_rel, [TupleValue(author, p) for p in pairs])

    books = Relation(
        books_rel,
        [
            TupleValue(book, ("Modern DBMS", authors(("Smith", "US")), "X", 1990)),
            TupleValue(
                book,
                ("Extensible Systems", authors(("Smith", "US"), ("Meyer", "DE")), "Y", 1992),
            ),
        ],
    )
    tc = TypeChecker(sos, object_types={"books": books_rel}.get)
    ev = Evaluator(algebra, resolver={"books": books}.get)

    flat = tc.check(Apply("unnest", (Var("books"), Var("authors"))))
    print("unnest type:", format_type(flat.type))
    for t in ev.eval(flat):
        print("  ", t)

    renested = tc.check(
        Apply(
            "nest",
            (
                Apply("unnest", (Var("books"), Var("authors"))),
                ListTerm((Var("name"), Var("country"))),
                Var("authors"),
            ),
        )
    )
    print("nest(unnest(books)) row count:", len(ev.eval(renested)))


def complex_demo() -> None:
    print("\n== complex object model: the persons example ==")
    sos, algebra = complex_object_model()
    address = tuple_type([("city", STRING), ("street", STRING)])
    person = tuple_type(
        [("name", STRING), ("children", TypeApp("set", (STRING,))), ("address", address)]
    )
    sos.type_system.check_type(person)
    print("persons type:", format_type(person))

    employee = tuple_type(
        [
            ("name", STRING),
            ("children", TypeApp("set", (STRING,))),
            ("address", address),
            ("salary", INT),
        ]
    )
    print("employee <= person (width subtyping):", co_subtype(employee, person))

    p = TupleValue(
        person,
        (
            "ann",
            ObjectSet(TypeApp("set", (STRING,)), ["kim", "lee"]),
            TupleValue(address, ("Hagen", "Main St")),
        ),
    )
    tc = TypeChecker(sos, object_types={"p": person}.get)
    ev = Evaluator(algebra, resolver={"p": p}.get)
    q = tc.check(Apply("card", (Apply("children", (Var("p"),)),)))
    print("card(children(p)) =", ev.eval(q))
    q2 = tc.check(Apply("city", (Apply("address", (Var("p"),)),)))
    print("city(address(p)) =", ev.eval(q2))


if __name__ == "__main__":
    nested_demo()
    complex_demo()
