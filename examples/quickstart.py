"""Quickstart: the paper's Section 2.4 example program.

Part 1 runs the model-level program exactly as in the paper — including
views and parameterized views "without any special construct".  Part 2 adds
a B-tree representation and shows the optimizer translating a model query.

Run:  python examples/quickstart.py
"""

from repro.api import connect

PROGRAM = """
type city = tuple(< (name, string), (pop, int), (country, string) >)
type city_rel = rel(city)
create cities : city_rel
update cities := insert(cities, mktuple[<(name, "Berlin"), (pop, 3500000), (country, "Germany")>])
update cities := insert(cities, mktuple[<(name, "Paris"), (pop, 2100000), (country, "France")>])
update cities := insert(cities, mktuple[<(name, "Hagen"), (pop, 210000), (country, "Germany")>])
update cities := insert(cities, mktuple[<(name, "Lyon"), (pop, 520000), (country, "France")>])
"""


def model_level() -> None:
    print("== Part 1: the Section 2.4 program at the model level ==")
    interp = connect(model="model")
    interp.run(PROGRAM)

    result = interp.run_one("query cities select[pop > 1000000]")
    print("-- query cities select[pop > 1000000]")
    for t in result.value.rows:
        print("  ", t)

    # Views: a function-valued object, queried as if it were a relation.
    interp.run(
        """
create french_cities : ( -> city_rel)
update french_cities := fun () cities select[country = "France"]
"""
    )
    result = interp.run_one("query french_cities select[pop > 400000]")
    print('-- query french_cities select[pop > 400000]')
    for t in result.value.rows:
        print("  ", t)

    # Parameterized views.
    interp.run(
        """
create cities_in : (string -> city_rel)
update cities_in := fun (c: string) cities select[country = c]
"""
    )
    result = interp.run_one('query cities_in("Germany")')
    print('-- query cities_in("Germany")')
    for t in result.value.rows:
        print("  ", t)


def optimizing_system() -> None:
    print("\n== Part 2: the same schema with a B-tree representation ==")
    system = connect()
    system.run(
        """
type city = tuple(< (name, string), (pop, int), (country, string) >)
create cities : rel(city)
create cities_rep : btree(city, pop, int)
update rep := insert(rep, cities, cities_rep)
update cities := insert(cities, mktuple[<(name, "Berlin"), (pop, 3500000), (country, "Germany")>])
update cities := insert(cities, mktuple[<(name, "Paris"), (pop, 2100000), (country, "France")>])
update cities := insert(cities, mktuple[<(name, "Hagen"), (pop, 210000), (country, "Germany")>])
"""
    )
    result = system.run_one("query cities select[pop >= 1000000]")
    print("-- query cities select[pop >= 1000000]")
    print("   rule fired:", result.fired)
    print("   translated:", result.generated_statement())
    for t in result.value:
        print("  ", t)


if __name__ == "__main__":
    model_level()
    optimizing_system()
