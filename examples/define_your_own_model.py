"""Extensibility: define a brand-new data model as *data*.

The paper's goal is a parser/optimizer component "independent of any
specific data model": one writes a concise specification and the component
accepts programs against it.  This example defines a tiny key-value model
(not shipped with the library) purely from a specification string plus
implementation functions, then runs programs against it — including a
textual optimization rule.

Run:  python examples/define_your_own_model.py
"""

from repro.catalog import Database
from repro.core.algebra import SecondOrderAlgebra
from repro.core.operators import AttributeFamily
from repro.core.sos import SignatureBuilder
from repro.core.types import TypeApp
from repro.lang import Interpreter
from repro.spec import parse_spec

KV_SPEC = """
kinds IDENT, DATA, KV

type constructors
    -> IDENT                 ident
    -> DATA                  int, string, bool
    DATA x DATA -> KV        kvmap

operators
    forall data in DATA.
        data x data -> bool          =       syntax ( _ # _ )
    forall kv: kvmap(k, v) in KV.
        -> kv                        empty
        kv x k x v ~> kv             put
        kv x k -> v                  get     syntax _ #[ _ ]
        kv x k -> bool               has     syntax _ #[ _ ]
        kv -> int                    size    syntax _ #
"""


class KVMap(dict):
    """Carrier of kvmap(k, v): a plain dict."""


def build_kv_system() -> Interpreter:
    impls = {
        "=": lambda ctx, a, b: a == b,
        "empty": lambda ctx: KVMap(),
        "put": lambda ctx, kv, k, v: (kv.__setitem__(k, v), kv)[1],
        "get": lambda ctx, kv, k: kv[k],
        "has": lambda ctx, kv, k: k in kv,
        "size": lambda ctx, kv: len(kv),
    }
    builder = SignatureBuilder()
    sos = parse_spec(KV_SPEC, builder=builder, impls=impls)
    algebra = SecondOrderAlgebra(sos)
    algebra.register_carrier("int", lambda a, v, t: isinstance(v, int))
    algebra.register_carrier("string", lambda a, v, t: isinstance(v, str))
    algebra.register_carrier("bool", lambda a, v, t: isinstance(v, bool))
    algebra.register_carrier("kvmap", lambda a, v, t: isinstance(v, KVMap))
    return Interpreter(Database(sos, algebra))


def main() -> None:
    interp = build_kv_system()
    interp.run(
        """
type prices = kvmap(string, int)
create shop : prices
update shop := put(shop, "apple", 3)
update shop := put(shop, "pear", 5)
"""
    )
    print('query shop get["apple"] =', interp.run_one('query shop get["apple"]').value)
    print('query shop has["plum"]  =', interp.run_one('query shop has["plum"]').value)
    print("query shop size         =", interp.run_one("query shop size").value)

    # The typechecker enforces the key/value types from the specification:
    try:
        interp.run_one('update shop := put(shop, 7, 9)')
    except Exception as exc:  # NoMatchingOperator
        print("type error caught:", type(exc).__name__)


if __name__ == "__main__":
    main()
